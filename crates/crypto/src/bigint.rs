//! Minimal arbitrary-precision unsigned integers with Montgomery modular
//! exponentiation.
//!
//! The GuardNN microcontroller runs a public-key key exchange
//! (ECDHE–ECDSA in the paper; finite-field DH + Schnorr here — see
//! DESIGN.md §4). That needs 2048-bit modular arithmetic. This module is a
//! deliberately small bignum: little-endian `u64` limbs, schoolbook
//! multiplication, and CIOS Montgomery reduction for fast `modpow`.
//!
//! # Example
//!
//! ```
//! use guardnn_crypto::bigint::BigUint;
//!
//! let p = BigUint::from(23u64);
//! let g = BigUint::from(5u64);
//! assert_eq!(g.modpow(&BigUint::from(6u64), &p), BigUint::from(8u64));
//! ```

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer (little-endian `u64` limbs).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs with no trailing zero limbs (canonical form).
    limbs: Vec<u64>,
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x")?;
        if self.limbs.is_empty() {
            write!(f, "0")?;
        }
        for (i, limb) in self.limbs.iter().rev().enumerate() {
            if i == 0 {
                write!(f, "{limb:x}")?;
            } else {
                write!(f, "{limb:016x}")?;
            }
        }
        write!(f, ")")
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            Self { limbs: vec![v] }
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {}
            ord => return ord,
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => {}
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl BigUint {
    /// The value 0.
    pub fn zero() -> Self {
        Self { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        Self { limbs: vec![1] }
    }

    /// Returns `true` when the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Parses a big-endian byte string (leading zeros allowed).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut iter = bytes.rchunks(8);
        for chunk in &mut iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        let mut out = Self { limbs };
        out.normalize();
        out
    }

    /// Parses a hex string; whitespace is ignored.
    ///
    /// # Panics
    ///
    /// Panics if a character is not a hex digit or whitespace (intended for
    /// compile-time constants such as the RFC 3526 moduli).
    pub fn from_hex(s: &str) -> Self {
        let digits: Vec<u8> = s
            .chars()
            .filter(|c| !c.is_whitespace())
            // lint:allow(panic-discipline) — documented `# Panics` contract for const hex inputs
            .map(|c| c.to_digit(16).expect("invalid hex digit") as u8)
            .collect();
        let mut bytes = Vec::with_capacity(digits.len() / 2 + 1);
        let mut rest: &[u8] = &digits;
        if rest.len() % 2 == 1 {
            bytes.push(rest[0]);
            rest = &rest[1..];
        }
        for pair in rest.chunks(2) {
            bytes.push((pair[0] << 4) | pair[1]);
        }
        Self::from_bytes_be(&bytes)
    }

    /// Serializes as big-endian bytes with no leading zeros (empty for 0).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        while out.first() == Some(&0) {
            out.remove(0);
        }
        out
    }

    /// Serializes as big-endian bytes left-padded with zeros to `len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Number of significant bits.
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Returns bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &Self) -> Self {
        let n = self.limbs.len().max(other.limbs.len());
        let mut out = Vec::with_capacity(n + 1);
        let mut carry = 0u128;
        for i in 0..n {
            let a = *self.limbs.get(i).unwrap_or(&0) as u128;
            let b = *other.limbs.get(i).unwrap_or(&0) as u128;
            let sum = a + b + carry;
            out.push(sum as u64);
            carry = sum >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        let mut r = Self { limbs: out };
        r.normalize();
        r
    }

    /// `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub(&self, other: &Self) -> Self {
        assert!(self >= other, "bigint subtraction underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i128;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i] as i128;
            let b = *other.limbs.get(i).unwrap_or(&0) as i128;
            let mut diff = a - b - borrow;
            if diff < 0 {
                diff += 1i128 << 64;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(diff as u64);
        }
        let mut r = Self { limbs: out };
        r.normalize();
        r
    }

    /// Schoolbook multiplication `self * other`.
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            out[i + other.limbs.len()] = carry as u64;
        }
        let mut r = Self { limbs: out };
        r.normalize();
        r
    }

    /// Left shift by one bit.
    pub fn shl1(&self) -> Self {
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u64;
        for &l in &self.limbs {
            out.push((l << 1) | carry);
            carry = l >> 63;
        }
        if carry != 0 {
            out.push(carry);
        }
        let mut r = Self { limbs: out };
        r.normalize();
        r
    }

    /// Right shift by one bit.
    pub fn shr1(&self) -> Self {
        let mut out = self.limbs.clone();
        let mut carry = 0u64;
        for l in out.iter_mut().rev() {
            let new_carry = *l & 1;
            *l = (*l >> 1) | (carry << 63);
            carry = new_carry;
        }
        let mut r = Self { limbs: out };
        r.normalize();
        r
    }

    /// `self mod m` by bitwise long reduction.
    ///
    /// O(bits(self) · limbs(m)); fine for the one-off reductions the key
    /// exchange needs (hash outputs, R² seeds). Hot-path modular arithmetic
    /// goes through [`MontgomeryCtx`].
    pub fn rem(&self, m: &Self) -> Self {
        assert!(!m.is_zero(), "modulo by zero");
        if self < m {
            return self.clone();
        }
        let mut r = Self::zero();
        for i in (0..self.bit_len()).rev() {
            r = r.shl1();
            if self.bit(i) {
                r = r.add(&Self::one());
            }
            if &r >= m {
                r = r.sub(m);
            }
        }
        r
    }

    /// Modular addition `(self + other) mod m`; inputs must already be `< m`.
    pub fn add_mod(&self, other: &Self, m: &Self) -> Self {
        let s = self.add(other);
        if &s >= m {
            s.sub(m)
        } else {
            s
        }
    }

    /// Modular exponentiation `self^exp mod m` using Montgomery reduction.
    ///
    /// # Panics
    ///
    /// Panics if `m` is even or zero (Montgomery form needs an odd modulus;
    /// all DH/Schnorr moduli here are odd primes).
    pub fn modpow(&self, exp: &Self, m: &Self) -> Self {
        let ctx = MontgomeryCtx::new(m.clone());
        ctx.pow(self, exp)
    }
}

/// Precomputed Montgomery context for a fixed odd modulus.
///
/// Used for every hot modular multiplication in the DH key exchange and
/// Schnorr signing: 2048-bit `modpow` with CIOS runs in milliseconds even in
/// debug builds.
#[derive(Clone, Debug)]
pub struct MontgomeryCtx {
    n: BigUint,
    /// Limb count of the modulus (fixed width of all Montgomery residues).
    width: usize,
    /// `-n^{-1} mod 2^64`.
    n0_inv: u64,
    /// `R^2 mod n` where `R = 2^(64*width)`.
    r2: BigUint,
}

impl MontgomeryCtx {
    /// Builds a context for the odd modulus `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or even.
    pub fn new(n: BigUint) -> Self {
        assert!(!n.is_zero(), "modulus must be nonzero");
        assert!(n.limbs[0] & 1 == 1, "modulus must be odd");
        let width = n.limbs.len();
        // Newton iteration for inverse of n mod 2^64.
        let n0 = n.limbs[0];
        let mut inv = 1u64;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        let n0_inv = inv.wrapping_neg();
        // R^2 mod n by 2*width*64 doublings of R mod n... start from 1 and
        // double 2*width*64 times mod n.
        let mut r2 = BigUint::one();
        for _ in 0..(2 * width * 64) {
            r2 = r2.shl1();
            if r2 >= n {
                r2 = r2.sub(&n);
            }
        }
        Self {
            n,
            width,
            n0_inv,
            r2,
        }
    }

    /// The modulus.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// CIOS Montgomery multiplication of two width-limb residues.
    #[allow(clippy::needless_range_loop)]
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let w = self.width;
        let mut t = vec![0u64; w + 2];
        for i in 0..w {
            // t += a[i] * b
            let mut carry = 0u128;
            for j in 0..w {
                let s = t[j] as u128 + (a[i] as u128) * (b[j] as u128) + carry;
                t[j] = s as u64;
                carry = s >> 64;
            }
            let s = t[w] as u128 + carry;
            t[w] = s as u64;
            t[w + 1] = (s >> 64) as u64;
            // m = t[0] * n0_inv mod 2^64; t += m * n; t >>= 64
            let m = t[0].wrapping_mul(self.n0_inv);
            let s = t[0] as u128 + (m as u128) * (self.n.limbs[0] as u128);
            let mut carry = s >> 64;
            for j in 1..w {
                let s = t[j] as u128 + (m as u128) * (self.n.limbs[j] as u128) + carry;
                t[j - 1] = s as u64;
                carry = s >> 64;
            }
            let s = t[w] as u128 + carry;
            t[w - 1] = s as u64;
            t[w] = t[w + 1] + ((s >> 64) as u64);
            t[w + 1] = 0;
        }
        // Final conditional subtraction.
        let mut res = t[..w].to_vec();
        let overflow = t[w] != 0;
        if overflow || ge_limbs(&res, &self.n.limbs) {
            sub_limbs(&mut res, &self.n.limbs);
        }
        res
    }

    /// Converts into Montgomery form (`a * R mod n`).
    fn to_mont(&self, a: &BigUint) -> Vec<u64> {
        let a = if a >= &self.n {
            a.rem(&self.n)
        } else {
            a.clone()
        };
        let mut al = a.limbs.clone();
        al.resize(self.width, 0);
        let mut r2 = self.r2.limbs.clone();
        r2.resize(self.width, 0);
        self.mont_mul(&al, &r2)
    }

    /// Converts out of Montgomery form.
    fn reduce_from_mont(&self, a: &[u64]) -> BigUint {
        let one = {
            let mut v = vec![0u64; self.width];
            v[0] = 1;
            v
        };
        let mut r = BigUint {
            limbs: self.mont_mul(a, &one),
        };
        r.normalize();
        r
    }

    /// Modular multiplication `(a * b) mod n`.
    pub fn mul_mod(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.reduce_from_mont(&self.mont_mul(&am, &bm))
    }

    /// Modular exponentiation `base^exp mod n` (left-to-right square & multiply).
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one().rem(&self.n);
        }
        let bm = self.to_mont(base);
        let mut acc = bm.clone();
        for i in (0..exp.bit_len() - 1).rev() {
            acc = self.mont_mul(&acc, &acc);
            if exp.bit(i) {
                acc = self.mont_mul(&acc, &bm);
            }
        }
        self.reduce_from_mont(&acc)
    }
}

/// `a >= b` for equal-width limb slices.
fn ge_limbs(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        match x.cmp(y) {
            Ordering::Greater => return true,
            Ordering::Less => return false,
            Ordering::Equal => {}
        }
    }
    true
}

/// `a -= b` in place for equal-width limb slices (caller ensures `a >= b`).
fn sub_limbs(a: &mut [u64], b: &[u64]) {
    let mut borrow = 0i128;
    for (x, y) in a.iter_mut().zip(b.iter()) {
        let mut diff = *x as i128 - *y as i128 - borrow;
        if diff < 0 {
            diff += 1i128 << 64;
            borrow = 1;
        } else {
            borrow = 0;
        }
        *x = diff as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn bytes_round_trip() {
        let x = BigUint::from_bytes_be(&[0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf0, 0x11]);
        assert_eq!(
            x.to_bytes_be(),
            vec![0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf0, 0x11]
        );
        assert_eq!(BigUint::from_bytes_be(&[0, 0, 5]).to_bytes_be(), vec![5]);
        assert!(BigUint::from_bytes_be(&[]).is_zero());
    }

    #[test]
    fn hex_parsing() {
        assert_eq!(BigUint::from_hex("ff"), n(255));
        assert_eq!(BigUint::from_hex("1 00"), n(256));
        assert_eq!(BigUint::from_hex("DEADBEEF"), n(0xDEAD_BEEF));
        // Odd number of digits.
        assert_eq!(BigUint::from_hex("abc"), n(0xabc));
    }

    #[test]
    fn padded_serialization() {
        assert_eq!(n(0x1234).to_bytes_be_padded(4), vec![0, 0, 0x12, 0x34]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn padded_serialization_too_small() {
        let _ = n(0x123456).to_bytes_be_padded(2);
    }

    #[test]
    fn add_sub_with_carries() {
        let a = BigUint::from_hex("ffffffffffffffff ffffffffffffffff");
        let one = BigUint::one();
        let sum = a.add(&one);
        assert_eq!(sum.bit_len(), 129);
        assert_eq!(sum.sub(&one), a);
    }

    #[test]
    fn mul_known_values() {
        assert_eq!(
            n(0xffff_ffff).mul(&n(0xffff_ffff)),
            n(0xFFFF_FFFE_0000_0001)
        );
        let a = BigUint::from_hex("123456789abcdef0");
        assert_eq!(a.mul(&BigUint::zero()), BigUint::zero());
        assert_eq!(a.mul(&BigUint::one()), a);
    }

    #[test]
    fn rem_small() {
        assert_eq!(n(100).rem(&n(7)), n(2));
        assert_eq!(n(6).rem(&n(7)), n(6));
        assert_eq!(n(7).rem(&n(7)), n(0));
    }

    #[test]
    fn modpow_small_prime() {
        // Fermat: a^(p-1) = 1 mod p for prime p not dividing a.
        let p = n(1_000_000_007);
        for a in [2u64, 3, 12345, 999_999_999] {
            assert_eq!(n(a).modpow(&p.sub(&BigUint::one()), &p), BigUint::one());
        }
    }

    #[test]
    fn modpow_zero_exponent() {
        assert_eq!(n(5).modpow(&BigUint::zero(), &n(7)), BigUint::one());
    }

    #[test]
    fn modpow_matches_naive_multilimb() {
        // 128-bit odd modulus.
        let m = BigUint::from_hex("f0000000000000000000000000000001");
        let base = BigUint::from_hex("123456789abcdef0fedcba9876543210");
        let exp = n(65537);
        // Naive square-and-multiply using mul + rem.
        let mut naive = BigUint::one();
        for i in (0..exp.bit_len()).rev() {
            naive = naive.mul(&naive).rem(&m);
            if exp.bit(i) {
                naive = naive.mul(&base).rem(&m);
            }
        }
        assert_eq!(base.modpow(&exp, &m), naive);
    }

    #[test]
    fn montgomery_mul_mod_matches_naive() {
        let m = BigUint::from_hex("c90fdaa22168c234c4c6628b80dc1cd129024e088a67cc75");
        let ctx = MontgomeryCtx::new(m.clone());
        let a = BigUint::from_hex("0123456789abcdef0123456789abcdef0123456789abcdef");
        let b = BigUint::from_hex("fedcba9876543210fedcba9876543210fedcba9876543210");
        assert_eq!(ctx.mul_mod(&a, &b), a.mul(&b).rem(&m));
    }

    #[test]
    fn ordering() {
        assert!(n(5) < n(6));
        assert!(BigUint::from_hex("10000000000000000") > n(u64::MAX));
        assert_eq!(n(5).cmp(&n(5)), Ordering::Equal);
    }

    #[test]
    fn shifts() {
        assert_eq!(n(5).shl1(), n(10));
        assert_eq!(n(5).shr1(), n(2));
        let big = BigUint::from_hex("8000000000000000");
        assert_eq!(big.shl1(), BigUint::from_hex("10000000000000000"));
    }
}
