//! Minimal manufacturer certificate chain.
//!
//! The paper assumes each accelerator is provisioned by a trusted
//! manufacturer with a unique private key plus a certificate, and that the
//! remote user obtains the device public key "using a public key
//! infrastructure as in Intel SGX or TPMs". This module models the smallest
//! PKI that supports that flow: a manufacturer (CA) signing key, a device
//! certificate binding a device id to its verifying key, and user-side
//! verification against the manufacturer's public key.
//!
//! # Example
//!
//! ```
//! use guardnn_crypto::cert::Manufacturer;
//! use guardnn_crypto::dh::DhGroup;
//! use guardnn_crypto::rng::TrngModel;
//! use guardnn_crypto::schnorr::SigningKey;
//!
//! let group = DhGroup::oakley768();
//! let mut rng = TrngModel::from_seed(0);
//! let maker = Manufacturer::new(&group, &mut rng);
//! let device_key = SigningKey::generate(&group, &mut rng);
//! let cert = maker.issue(42, &device_key.verifying_key(), &mut rng);
//! assert!(cert.verify(&maker.public_key()));
//! ```

use crate::dh::DhGroup;
use crate::rng::TrngModel;
use crate::schnorr::{Signature, SigningKey, VerifyingKey};
use crate::sha256::Sha256;

/// A device certificate: (device id, device public key) signed by the
/// manufacturer.
#[derive(Clone, Debug)]
pub struct Certificate {
    /// Unique device serial number.
    pub device_id: u64,
    /// The device's attestation/verifying key.
    pub device_key: VerifyingKey,
    /// Manufacturer signature over `H(device_id ‖ device_key)`.
    pub signature: Signature,
}

fn cert_digest(device_id: u64, device_key: &VerifyingKey) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"guardnn-device-cert-v1");
    h.update(&device_id.to_be_bytes());
    h.update(&device_key.to_bytes());
    h.finalize()
}

impl Certificate {
    /// Verifies the manufacturer signature with the manufacturer's public
    /// key (the user's root of trust).
    pub fn verify(&self, manufacturer_key: &VerifyingKey) -> bool {
        manufacturer_key.verify(
            &cert_digest(self.device_id, &self.device_key),
            &self.signature,
        )
    }
}

/// The trusted manufacturer (certificate authority).
#[derive(Clone, Debug)]
pub struct Manufacturer {
    key: SigningKey,
}

impl Manufacturer {
    /// Creates a manufacturer with a fresh CA key.
    pub fn new(group: &DhGroup, rng: &mut TrngModel) -> Self {
        Self {
            key: SigningKey::generate(group, rng),
        }
    }

    /// The manufacturer's public key, distributed out of band to users.
    pub fn public_key(&self) -> VerifyingKey {
        self.key.verifying_key()
    }

    /// Issues a certificate for a device attestation key.
    pub fn issue(
        &self,
        device_id: u64,
        device_key: &VerifyingKey,
        rng: &mut TrngModel,
    ) -> Certificate {
        let signature = self.key.sign(&cert_digest(device_id, device_key), rng);
        Certificate {
            device_id,
            device_key: device_key.clone(),
            signature,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Manufacturer, SigningKey, TrngModel) {
        let group = DhGroup::oakley768();
        let mut rng = TrngModel::from_seed(7);
        let maker = Manufacturer::new(&group, &mut rng);
        let device = SigningKey::generate(&group, &mut rng);
        (maker, device, rng)
    }

    #[test]
    fn issued_cert_verifies() {
        let (maker, device, mut rng) = setup();
        let cert = maker.issue(1, &device.verifying_key(), &mut rng);
        assert!(cert.verify(&maker.public_key()));
    }

    #[test]
    fn cert_bound_to_device_id() {
        let (maker, device, mut rng) = setup();
        let cert = maker.issue(1, &device.verifying_key(), &mut rng);
        let forged = Certificate {
            device_id: 2,
            ..cert
        };
        assert!(!forged.verify(&maker.public_key()));
    }

    #[test]
    fn cert_bound_to_device_key() {
        let (maker, device, mut rng) = setup();
        let cert = maker.issue(1, &device.verifying_key(), &mut rng);
        let other = SigningKey::generate(device.verifying_key().group(), &mut rng);
        let forged = Certificate {
            device_key: other.verifying_key(),
            ..cert
        };
        assert!(!forged.verify(&maker.public_key()));
    }

    #[test]
    fn cert_rejected_by_wrong_ca() {
        let (maker, device, mut rng) = setup();
        let cert = maker.issue(1, &device.verifying_key(), &mut rng);
        let rogue = Manufacturer::new(device.verifying_key().group(), &mut rng);
        assert!(!cert.verify(&rogue.public_key()));
    }
}
