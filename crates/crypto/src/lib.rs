//! From-scratch cryptographic primitives used by the GuardNN secure
//! accelerator model.
//!
//! The GuardNN paper (DAC 2022) assumes a hardware root of trust: an on-chip
//! AES engine for off-chip memory encryption, a MAC for integrity
//! verification, a hash for remote attestation, a true random number
//! generator, and a public-key key-exchange/signature scheme run on an
//! embedded microcontroller. This crate implements software models of all of
//! those building blocks with no external dependencies:
//!
//! * [`aes`] — AES-128 block cipher (FIPS-197).
//! * [`ctr`] — AES counter mode with the GuardNN counter-block layout
//!   (physical block address ‖ version number).
//! * [`cmac`] — AES-CMAC (RFC 4493) used for per-chunk memory MACs.
//! * [`sha256`] — SHA-256 (FIPS 180-4) used for attestation hash chains.
//! * [`hmac`] — HMAC-SHA256 and HKDF (RFC 2104 / RFC 5869) for session-key
//!   derivation.
//! * [`bigint`] — minimal arbitrary-precision unsigned integers with
//!   Montgomery modular exponentiation, supporting the key exchange.
//! * [`dh`] — finite-field Diffie-Hellman over RFC 3526 MODP groups
//!   (the repo's stand-in for the paper's ECDHE; see DESIGN.md §4).
//! * [`schnorr`] — Schnorr signatures over the same groups (stand-in for
//!   ECDSA device signatures).
//! * [`cert`] — a minimal manufacturer-certificate chain binding a device
//!   public key, as the paper's PKI assumption.
//! * [`rng`] — a deterministic counter-mode PRG modelling the on-chip TRNG.
//!
//! # Example
//!
//! ```
//! use guardnn_crypto::aes::Aes128;
//!
//! let key = [0u8; 16];
//! let cipher = Aes128::new(&key);
//! let ct = cipher.encrypt_block(&[0u8; 16]);
//! assert_eq!(cipher.decrypt_block(&ct), [0u8; 16]);
//! ```

#![deny(missing_docs)]

pub mod aes;
pub mod bigint;
pub mod cert;
pub mod cmac;
pub mod ctr;
pub mod dh;
pub mod hmac;
pub mod rng;
pub mod schnorr;
pub mod sha256;

/// Constant-time equality comparison of two byte slices.
///
/// Returns `false` when lengths differ. Used wherever a MAC, hash, or
/// signature component is compared so that the *model* mirrors the
/// non-leaking comparator the hardware would use.
///
/// # Example
///
/// ```
/// assert!(guardnn_crypto::ct_eq(b"abc", b"abc"));
/// assert!(!guardnn_crypto::ct_eq(b"abc", b"abd"));
/// ```
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_eq_equal() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"guardnn", b"guardnn"));
    }

    #[test]
    fn ct_eq_unequal_content() {
        assert!(!ct_eq(b"guardnn", b"guardnm"));
    }

    #[test]
    fn ct_eq_unequal_length() {
        assert!(!ct_eq(b"guard", b"guardnn"));
    }
}
