//! Schnorr signatures over RFC 3526 MODP groups.
//!
//! GuardNN's `SignOutput` instruction signs the attestation hashes with the
//! accelerator's unique private key SK_Accel (ECDSA in the paper). We
//! substitute Schnorr over a prime-field group — the same role (device
//! signature verifiable with the certified public key) with a simpler,
//! easier-to-verify construction. See DESIGN.md §4.
//!
//! Signature: pick `k ← [1, q)`, compute `r = g^k mod p`,
//! `e = H(r ‖ m) mod q`, `s = k + e·x mod q`; output `(e, s)`.
//! Verification: `r' = g^s · y^{-e} = g^s · y^{q-e}`, accept iff
//! `H(r' ‖ m) mod q == e`.
//!
//! # Example
//!
//! ```
//! use guardnn_crypto::dh::DhGroup;
//! use guardnn_crypto::rng::TrngModel;
//! use guardnn_crypto::schnorr::SigningKey;
//!
//! let group = DhGroup::oakley768();
//! let mut rng = TrngModel::from_seed(1);
//! let sk = SigningKey::generate(&group, &mut rng);
//! let sig = sk.sign(b"attestation report", &mut rng);
//! assert!(sk.verifying_key().verify(b"attestation report", &sig));
//! ```

use crate::bigint::{BigUint, MontgomeryCtx};
use crate::dh::DhGroup;
use crate::rng::TrngModel;
use crate::sha256::Sha256;

/// A Schnorr signature `(e, s)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Signature {
    /// Challenge `e = H(r ‖ m) mod q`.
    pub e: BigUint,
    /// Response `s = k + e·x mod q`.
    pub s: BigUint,
}

impl Signature {
    /// Serializes the signature as length-prefixed big-endian integers.
    pub fn to_bytes(&self) -> Vec<u8> {
        let e = self.e.to_bytes_be();
        let s = self.s.to_bytes_be();
        let mut out = Vec::with_capacity(e.len() + s.len() + 8);
        out.extend_from_slice(&(e.len() as u32).to_be_bytes());
        out.extend_from_slice(&e);
        out.extend_from_slice(&(s.len() as u32).to_be_bytes());
        out.extend_from_slice(&s);
        out
    }

    /// Parses a signature serialized by [`Signature::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 4 {
            return None;
        }
        let e_len = u32::from_be_bytes(bytes[..4].try_into().ok()?) as usize;
        let rest = &bytes[4..];
        if rest.len() < e_len + 4 {
            return None;
        }
        let e = BigUint::from_bytes_be(&rest[..e_len]);
        let rest = &rest[e_len..];
        let s_len = u32::from_be_bytes(rest[..4].try_into().ok()?) as usize;
        let rest = &rest[4..];
        if rest.len() != s_len {
            return None;
        }
        let s = BigUint::from_bytes_be(rest);
        Some(Self { e, s })
    }
}

/// A Schnorr private (signing) key — models SK_Accel fused into the device.
#[derive(Clone)]
pub struct SigningKey {
    group: DhGroup,
    x: BigUint,
    y: BigUint,
}

impl std::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SigningKey")
            .field("group", &self.group.name())
            .field("x", &"<redacted>")
            .finish()
    }
}

/// A Schnorr public (verifying) key — models PK_Accel published via the
/// manufacturer certificate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyingKey {
    group: DhGroup,
    y: BigUint,
}

// DhGroup has no PartialEq; compare by name + prime.
impl PartialEq for DhGroup {
    fn eq(&self, other: &Self) -> bool {
        self.name() == other.name() && self.prime() == other.prime()
    }
}
impl Eq for DhGroup {}

fn challenge(group: &DhGroup, r: &BigUint, message: &[u8]) -> BigUint {
    let mut h = Sha256::new();
    h.update(&r.to_bytes_be());
    h.update(message);
    BigUint::from_bytes_be(&h.finalize()).rem(group.order())
}

impl SigningKey {
    /// Generates a fresh signing key with randomness from `rng`.
    pub fn generate(group: &DhGroup, rng: &mut TrngModel) -> Self {
        let x = group.sample_exponent(rng);
        let y = group.pow_g(&x);
        Self {
            group: group.clone(),
            x,
            y,
        }
    }

    /// The corresponding verifying key.
    pub fn verifying_key(&self) -> VerifyingKey {
        VerifyingKey {
            group: self.group.clone(),
            y: self.y.clone(),
        }
    }

    /// Signs `message` with a fresh nonce from `rng`.
    pub fn sign(&self, message: &[u8], rng: &mut TrngModel) -> Signature {
        let q = self.group.order();
        let k = self.group.sample_exponent(rng);
        let r = self.group.pow_g(&k);
        let e = challenge(&self.group, &r, message);
        // s = k + e*x mod q
        let qctx = MontgomeryCtx::new(q.clone());
        let ex = qctx.mul_mod(&e, &self.x);
        let s = k.add_mod(&ex, q);
        Signature { e, s }
    }
}

impl VerifyingKey {
    /// Creates a verifying key from a raw public group element.
    pub fn from_element(group: &DhGroup, y: BigUint) -> Self {
        Self {
            group: group.clone(),
            y,
        }
    }

    /// The raw public group element `y = g^x mod p`.
    pub fn element(&self) -> &BigUint {
        &self.y
    }

    /// The group this key lives in.
    pub fn group(&self) -> &DhGroup {
        &self.group
    }

    /// Serializes as big-endian bytes padded to the modulus width.
    pub fn to_bytes(&self) -> Vec<u8> {
        let width = self.group.prime().bit_len().div_ceil(8);
        self.y.to_bytes_be_padded(width)
    }

    /// Verifies a signature over `message`.
    pub fn verify(&self, message: &[u8], sig: &Signature) -> bool {
        let q = self.group.order();
        if sig.e >= *q || sig.s >= *q || !self.group.validate_public(&self.y) {
            return false;
        }
        // r' = g^s * y^(q - e) — valid because y has order q.
        let gs = self.group.pow_g(&sig.s);
        let y_qe = self.group.pow(&self.y, &q.sub(&sig.e));
        let r = self.group.mul(&gs, &y_qe);
        challenge(&self.group, &r, message) == sig.e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SigningKey, TrngModel) {
        let group = DhGroup::oakley768();
        let mut rng = TrngModel::from_seed(2024);
        let sk = SigningKey::generate(&group, &mut rng);
        (sk, rng)
    }

    #[test]
    fn sign_verify_round_trip() {
        let (sk, mut rng) = setup();
        let vk = sk.verifying_key();
        let sig = sk.sign(b"output hash", &mut rng);
        assert!(vk.verify(b"output hash", &sig));
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let (sk, mut rng) = setup();
        let vk = sk.verifying_key();
        let sig = sk.sign(b"message A", &mut rng);
        assert!(!vk.verify(b"message B", &sig));
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let group = DhGroup::oakley768();
        let mut rng = TrngModel::from_seed(1);
        let sk1 = SigningKey::generate(&group, &mut rng);
        let sk2 = SigningKey::generate(&group, &mut rng);
        let sig = sk1.sign(b"msg", &mut rng);
        assert!(!sk2.verifying_key().verify(b"msg", &sig));
    }

    #[test]
    fn verify_rejects_tampered_signature() {
        let (sk, mut rng) = setup();
        let vk = sk.verifying_key();
        let sig = sk.sign(b"msg", &mut rng);
        let bad = Signature {
            e: sig.e.add(&BigUint::one()),
            s: sig.s.clone(),
        };
        assert!(!vk.verify(b"msg", &bad));
        let bad = Signature {
            e: sig.e,
            s: sig.s.add(&BigUint::one()),
        };
        assert!(!vk.verify(b"msg", &bad));
    }

    #[test]
    fn signature_serialization_round_trip() {
        let (sk, mut rng) = setup();
        let sig = sk.sign(b"serialize me", &mut rng);
        let bytes = sig.to_bytes();
        let parsed = Signature::from_bytes(&bytes).expect("parse");
        assert_eq!(parsed, sig);
        assert!(Signature::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        assert!(Signature::from_bytes(&[]).is_none());
    }

    #[test]
    fn signatures_are_randomized() {
        let (sk, mut rng) = setup();
        let s1 = sk.sign(b"msg", &mut rng);
        let s2 = sk.sign(b"msg", &mut rng);
        assert_ne!(s1, s2, "fresh nonce must randomize the signature");
        assert!(sk.verifying_key().verify(b"msg", &s1));
        assert!(sk.verifying_key().verify(b"msg", &s2));
    }
}
