//! HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).
//!
//! GuardNN derives its symmetric session key (K_Session) and memory
//! encryption key (K_MEnc) from the Diffie-Hellman shared secret with a key
//! derivation function; this module supplies HKDF-SHA256 for that purpose.
//!
//! # Example
//!
//! ```
//! use guardnn_crypto::hmac::hkdf_sha256;
//!
//! let okm = hkdf_sha256(b"shared-secret", b"salt", b"guardnn session", 32);
//! assert_eq!(okm.len(), 32);
//! ```

use crate::sha256::Sha256;

/// Computes HMAC-SHA256 of `message` under `key`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut key_block = [0u8; 64];
    if key.len() > 64 {
        key_block[..32].copy_from_slice(&Sha256::digest(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// HKDF-SHA256 extract-and-expand (RFC 5869).
///
/// Returns `len` bytes of output keying material derived from `ikm` with the
/// given `salt` and `info` context string.
///
/// # Panics
///
/// Panics if `len > 255 * 32` (the HKDF output limit).
pub fn hkdf_sha256(ikm: &[u8], salt: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * 32, "hkdf output too long");
    let prk = hmac_sha256(salt, ikm);
    let mut okm = Vec::with_capacity(len);
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while okm.len() < len {
        let mut msg = t.clone();
        msg.extend_from_slice(info);
        msg.push(counter);
        t = hmac_sha256(&prk, &msg).to_vec();
        okm.extend_from_slice(&t);
        counter += 1;
    }
    okm.truncate(len);
    okm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0b; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    /// RFC 4231 test case 2 (short key, "what do ya want for nothing?").
    #[test]
    fn rfc4231_case2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    /// RFC 4231 test case 3 (key and data of 0xaa/0xdd bytes).
    #[test]
    fn rfc4231_case3() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    /// RFC 4231 test case 6 (key longer than block size).
    #[test]
    fn rfc4231_case6() {
        let key = [0xaa; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    /// RFC 5869 test case 1.
    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0b; 22];
        let salt: Vec<u8> = (0x00..=0x0c).collect();
        let info: Vec<u8> = (0xf0..=0xf9).collect();
        let okm = hkdf_sha256(&ikm, &salt, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    /// RFC 5869 test case 3 (empty salt and info).
    #[test]
    fn rfc5869_case3() {
        let ikm = [0x0b; 22];
        let okm = hkdf_sha256(&ikm, b"", b"", 42);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    /// RFC 5869 test case 2: long inputs, 82-byte output (multi-block
    /// expand).
    #[test]
    fn rfc5869_case2_long() {
        let ikm: Vec<u8> = (0x00..=0x4f).collect();
        let salt: Vec<u8> = (0x60..=0xaf).collect();
        let info: Vec<u8> = (0xb0..=0xff).collect();
        let okm = hkdf_sha256(&ikm, &salt, &info, 82);
        assert_eq!(
            hex(&okm[..32]),
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c"
        );
        assert_eq!(okm.len(), 82);
    }

    #[test]
    #[should_panic(expected = "hkdf output too long")]
    fn hkdf_output_limit_enforced() {
        let _ = hkdf_sha256(b"ikm", b"", b"", 255 * 32 + 1);
    }

    #[test]
    fn distinct_info_distinct_keys() {
        let a = hkdf_sha256(b"secret", b"", b"guardnn k_session", 16);
        let b = hkdf_sha256(b"secret", b"", b"guardnn k_menc", 16);
        assert_ne!(a, b);
    }
}
