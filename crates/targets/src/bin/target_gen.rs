//! `target-gen` — inspect the built-in registry and emit new hardware
//! target descriptions from CLI-specified speed-grade/geometry knobs.
//!
//! ```text
//! target-gen list
//! target-gen show guardnn-paper
//! target-gen validate [FILE ...]       # no files: validate the registry
//! target-gen new --name my-point [--base guardnn-paper] [KNOBS] [--out FILE]
//! ```
//!
//! `new` starts from a base target and rescales the DDR4 core timings in
//! *nanoseconds* when the memory clock changes (round-to-nearest cycles,
//! floor 1), which is how real speed bins relate: tRCD is a property of
//! the DRAM cell array, not the bus clock.

use guardnn_targets::{builtin_targets, get, HardwareTarget};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: target-gen <command>\n\
         \n\
         commands:\n\
         \x20 list                          registered targets, one per line\n\
         \x20 show NAME                     print a registered target's description\n\
         \x20 validate [FILE ...]           parse+validate files (default: the registry)\n\
         \x20 new --name NAME [OPTIONS]     derive a new description\n\
         \n\
         new options:\n\
         \x20 --base NAME              starting point (default guardnn-paper)\n\
         \x20 --description TEXT       one-line description\n\
         \x20 --dram-clock-mhz N       memory clock; core timings rescale in ns\n\
         \x20 --channels N  --ranks N  --row-bytes N   DRAM geometry\n\
         \x20 --rows N  --cols N  --array-clock-mhz N  systolic geometry\n\
         \x20 --dsps N  --aes-engines N --mem-bw-gbps X  FPGA point\n\
         \x20 --out FILE               write to FILE instead of stdout"
    );
    ExitCode::from(2)
}

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("target-gen: {msg}");
    ExitCode::FAILURE
}

/// Rescales one timing parameter from `old_clock` to `new_clock` keeping
/// its duration in nanoseconds constant (round to nearest, at least 1).
fn rescale(cycles: u64, old_clock: u64, new_clock: u64) -> u64 {
    ((cycles as u128 * new_clock as u128 + old_clock as u128 / 2) / old_clock as u128).max(1) as u64
}

fn apply_dram_clock(t: &mut HardwareTarget, new_clock: u64) {
    let old_clock = t.dram.clock_mhz;
    if old_clock == new_clock {
        return;
    }
    let tm = &mut t.dram.timing;
    for field in [
        &mut tm.cl,
        &mut tm.rcd,
        &mut tm.rp,
        &mut tm.ras,
        &mut tm.ccd_l,
        &mut tm.ccd_s,
        &mut tm.rrd,
        &mut tm.faw,
        &mut tm.wr,
        &mut tm.wtr,
        &mut tm.rtw,
        &mut tm.rfc,
        &mut tm.refi,
    ] {
        *field = rescale(*field, old_clock, new_clock);
    }
    // ccd_s must not exceed ccd_l after independent rounding.
    tm.ccd_s = tm.ccd_s.min(tm.ccd_l);
    t.dram.clock_mhz = new_clock;
}

fn cmd_new(args: &[String]) -> Result<(), String> {
    let mut name = None;
    let mut base = "guardnn-paper".to_string();
    let mut description = None;
    let mut out = None;
    let mut dram_clock = None;
    let mut u64_knobs: Vec<(&'static str, u64)> = Vec::new();
    let mut mem_bw = None;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .map(|s| s.to_string())
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--name" => name = Some(value()?),
            "--base" => base = value()?,
            "--description" => description = Some(value()?),
            "--out" => out = Some(value()?),
            "--mem-bw-gbps" => {
                mem_bw = Some(
                    value()?
                        .parse::<f64>()
                        .map_err(|_| format!("{flag}: expected a number"))?,
                )
            }
            "--dram-clock-mhz" | "--channels" | "--ranks" | "--row-bytes" | "--rows" | "--cols"
            | "--array-clock-mhz" | "--dsps" | "--aes-engines" => {
                let raw = value()?;
                let v: u64 = raw
                    .parse()
                    .map_err(|_| format!("{flag}: expected an unsigned integer, got {raw:?}"))?;
                match flag.as_str() {
                    "--dram-clock-mhz" => dram_clock = Some(v),
                    "--channels" => u64_knobs.push(("channels", v)),
                    "--ranks" => u64_knobs.push(("ranks", v)),
                    "--row-bytes" => u64_knobs.push(("row_bytes", v)),
                    "--rows" => u64_knobs.push(("rows", v)),
                    "--cols" => u64_knobs.push(("cols", v)),
                    "--array-clock-mhz" => u64_knobs.push(("array_clock", v)),
                    "--dsps" => u64_knobs.push(("dsps", v)),
                    "--aes-engines" => u64_knobs.push(("aes_engines", v)),
                    // lint:allow(panic-discipline) — keys are the literals matched just above
                    _ => unreachable!(),
                }
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    let name = name.ok_or("--name is required")?;
    let mut target = get(&base).map_err(|e| e.to_string())?.clone();
    target.name = name;
    target.description = description.unwrap_or_else(|| format!("Derived from {base}"));
    if let Some(clock) = dram_clock {
        apply_dram_clock(&mut target, clock);
    }
    for (knob, v) in u64_knobs {
        match knob {
            "channels" => target.dram.channels = v,
            "ranks" => target.dram.ranks = v,
            "row_bytes" => target.dram.row_bytes = v,
            "rows" => target.array.rows = v,
            "cols" => target.array.cols = v,
            "array_clock" => target.array.clock_mhz = v,
            "dsps" => target.fpga.dsps = v,
            "aes_engines" => target.fpga.aes_engines = v,
            // lint:allow(panic-discipline) — knob keys come from the literal arms above
            _ => unreachable!(),
        }
    }
    if let Some(bw) = mem_bw {
        target.fpga.mem_bw_gbps = bw;
    }
    target.validate().map_err(|e| e.to_string())?;
    let rendered = target.to_yaml();
    match out {
        Some(path) => {
            std::fs::write(&path, &rendered).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => print!("{rendered}"),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    match command.as_str() {
        "list" => {
            for t in builtin_targets() {
                println!("{:<16} {}", t.name, t.description);
            }
            ExitCode::SUCCESS
        }
        "show" => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            match get(name) {
                Ok(t) => {
                    print!("{}", t.to_yaml());
                    ExitCode::SUCCESS
                }
                Err(e) => fail(e),
            }
        }
        "validate" => {
            let files = &args[1..];
            if files.is_empty() {
                for t in builtin_targets() {
                    if let Err(e) = t.validate() {
                        return fail(format!("{}: {e}", t.name));
                    }
                    // Re-parse the serialization too: a registry target
                    // that cannot round-trip is as broken as one that
                    // cannot parse.
                    match HardwareTarget::parse(&t.to_yaml()) {
                        Ok(again) if again == *t => {}
                        Ok(_) => return fail(format!("{}: round-trip drifted", t.name)),
                        Err(e) => return fail(format!("{}: round-trip: {e}", t.name)),
                    }
                    println!("ok: {} (registry)", t.name);
                }
                return ExitCode::SUCCESS;
            }
            for path in files {
                let text = match std::fs::read_to_string(path) {
                    Ok(t) => t,
                    Err(e) => return fail(format!("{path}: {e}")),
                };
                match HardwareTarget::parse(&text) {
                    Ok(t) => println!("ok: {} ({path})", t.name),
                    Err(e) => return fail(format!("{path}: {e}")),
                }
            }
            ExitCode::SUCCESS
        }
        "new" => match cmd_new(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => fail(msg),
        },
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardnn_targets::TargetError;

    #[test]
    fn rescale_keeps_ns_constant() {
        // DDR4-2400 CL17 @ 1200 MHz is 14.17 ns; at 1600 MHz that is
        // 22.67 cycles -> 23? No: 17 * 1600 / 1200 = 22.67, rounds to 23.
        assert_eq!(rescale(17, 1200, 1600), 23);
        assert_eq!(rescale(17, 1200, 1066), 15);
        assert_eq!(rescale(420, 1200, 1066), 373);
        assert_eq!(rescale(1, 1200, 300), 1, "floor at 1 cycle");
        assert_eq!(rescale(9360, 1200, 1200), 9360, "identity");
    }

    #[test]
    fn derived_target_validates_and_round_trips() {
        let mut t = get("guardnn-paper").unwrap().clone();
        t.name = "derived-2666".into();
        apply_dram_clock(&mut t, 1333);
        t.validate().unwrap();
        let again = HardwareTarget::parse(&t.to_yaml()).unwrap();
        assert_eq!(again, t);
        assert_eq!(again.dram.timing.cl, rescale(17, 1200, 1333));
    }

    #[test]
    fn unknown_base_is_a_typed_error() {
        let err = get("nope").unwrap_err();
        assert!(matches!(err, TargetError::UnknownTarget { .. }));
    }
}
