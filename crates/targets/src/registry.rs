//! The built-in target registry.
//!
//! Every description under `crates/targets/targets/*.yaml` is embedded at
//! compile time via `include_str!` and parsed once on first access
//! (`std::sync::OnceLock`), so lookups are cheap and a malformed embedded
//! file fails every test rather than one code path. Adding a hardware
//! point is: drop a file in `targets/`, add one line to `EMBEDDED`.
//!
//! ```
//! let target = guardnn_targets::get("guardnn-paper").unwrap();
//! assert_eq!(target.name, "guardnn-paper");
//! assert!(guardnn_targets::get("no-such-target").is_err());
//! ```

use crate::{HardwareTarget, TargetError};
use std::sync::OnceLock;

/// The embedded source files, in presentation order (`guardnn-paper`
/// first — it is the reference point the differential test pins).
const EMBEDDED: &[(&str, &str)] = &[
    (
        "guardnn-paper",
        include_str!("../targets/guardnn-paper.yaml"),
    ),
    ("ddr4-2133", include_str!("../targets/ddr4-2133.yaml")),
    ("ddr4-3200", include_str!("../targets/ddr4-3200.yaml")),
    ("edge-32x32", include_str!("../targets/edge-32x32.yaml")),
    ("hbm-wide", include_str!("../targets/hbm-wide.yaml")),
    (
        "lpddr4-lowpower",
        include_str!("../targets/lpddr4-lowpower.yaml"),
    ),
];

fn parsed() -> &'static [HardwareTarget] {
    static CACHE: OnceLock<Vec<HardwareTarget>> = OnceLock::new();
    CACHE.get_or_init(|| {
        EMBEDDED
            .iter()
            .map(|(name, src)| {
                let target = HardwareTarget::parse(src)
                    // lint:allow(panic-discipline) — embedded static data, validated by tier-1 tests
                    .unwrap_or_else(|e| panic!("embedded target {name:?} is malformed: {e}"));
                assert_eq!(
                    target.name, *name,
                    "embedded target file name and `name:` field disagree"
                );
                target
            })
            .collect()
    })
}

/// All built-in targets, `guardnn-paper` first.
pub fn builtin_targets() -> &'static [HardwareTarget] {
    parsed()
}

/// The registered names, in registry order.
pub fn names() -> Vec<&'static str> {
    parsed().iter().map(|t| t.name.as_str()).collect()
}

/// Looks a target up by name. Unknown names come back as
/// [`TargetError::UnknownTarget`] listing every valid name.
pub fn get(name: &str) -> Result<&'static HardwareTarget, TargetError> {
    parsed()
        .iter()
        .find(|t| t.name == name)
        .ok_or_else(|| TargetError::UnknownTarget {
            name: name.to_string(),
            known: names().iter().map(|s| s.to_string()).collect(),
        })
}

/// The raw embedded source of a registered target (for `target-gen show`
/// and the round-trip test).
pub fn source(name: &str) -> Option<&'static str> {
    EMBEDDED
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, src)| *src)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_embedded_file_parses_and_validates() {
        let targets = builtin_targets();
        assert_eq!(targets.len(), EMBEDDED.len());
        for t in targets {
            t.validate().unwrap();
        }
    }

    #[test]
    fn registry_round_trips_every_target() {
        for t in builtin_targets() {
            let rendered = t.to_yaml();
            let reparsed = HardwareTarget::parse(&rendered)
                .unwrap_or_else(|e| panic!("{}: re-parse failed: {e}", t.name));
            assert_eq!(&reparsed, t, "{} round-trip drifted", t.name);
        }
    }

    #[test]
    fn lookup_and_unknown_name() {
        assert_eq!(get("guardnn-paper").unwrap().dram.timing.cl, 17);
        let err = get("ddr5-think-different").unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("unknown target") && msg.contains("guardnn-paper"),
            "{msg}"
        );
    }

    #[test]
    fn names_are_unique_and_ordered() {
        let names = names();
        assert_eq!(names[0], "guardnn-paper");
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate registry names");
    }
}
