//! Declarative hardware target descriptions for the GuardNN evaluation.
//!
//! The paper's claim is that VN-generated memory protection stays cheap
//! *across hardware points*, so a hardware point must be a config file,
//! not a code change. This crate defines the [`HardwareTarget`]
//! description — DRAM geometry plus a full DDR4 speed bin, the systolic
//! array shape/SRAM/clock, the MicroBlaze firmware latency profile, and
//! the CHaiDNN FPGA resource table — a hand-rolled [`yaml`]-subset text
//! format for it (the build is offline; no registry crates), and the
//! built-in [`registry`] embedding `targets/*.yaml` via `include_str!`.
//!
//! The crate is a dependency *leaf*: `guardnn-dram`, `guardnn-systolic`,
//! `guardnn-fpga`, and `guardnn` all depend on it (each exposing
//! `from_target` constructors), never the other way around.
//!
//! ```
//! let target = guardnn_targets::get("guardnn-paper").unwrap();
//! assert_eq!(target.dram.clock_mhz, 1200); // DDR4-2400
//! assert_eq!((target.array.rows, target.array.cols), (256, 256));
//! // Round-trip: serialization re-parses to the identical description.
//! let again = guardnn_targets::HardwareTarget::parse(&target.to_yaml()).unwrap();
//! assert_eq!(again, *target);
//! ```

#![deny(missing_docs)]

pub mod registry;
pub mod target;
pub mod yaml;

pub use registry::{builtin_targets, get, names};
pub use target::{
    ArraySpec, BaseDesignSpec, DataflowSpec, DramSpec, FpgaSpec, HardwareTarget, MicroblazeSpec,
    ResourceSpec, TimingSpec,
};

/// Everything that can go wrong loading a target description. Malformed
/// input is a typed error, never a panic.
#[derive(Clone, Debug, PartialEq)]
pub enum TargetError {
    /// The text is outside the supported YAML subset or malformed.
    Syntax {
        /// 1-based source line (0 when no line applies).
        line: usize,
        /// What was wrong.
        msg: String,
    },
    /// A field the schema requires is absent.
    MissingField {
        /// Dotted path of the missing field (`dram.timing.cl`).
        path: String,
    },
    /// A field is present but unusable (wrong type, out of range,
    /// unknown key).
    Invalid {
        /// Dotted path of the offending field.
        path: String,
        /// What was wrong.
        msg: String,
    },
    /// The requested name is not in the registry.
    UnknownTarget {
        /// The name that failed to resolve.
        name: String,
        /// Every name the registry does know.
        known: Vec<String>,
    },
}

impl std::fmt::Display for TargetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TargetError::Syntax { line, msg } => {
                if *line == 0 {
                    write!(f, "syntax error: {msg}")
                } else {
                    write!(f, "syntax error at line {line}: {msg}")
                }
            }
            TargetError::MissingField { path } => write!(f, "missing field `{path}`"),
            TargetError::Invalid { path, msg } => {
                if path.is_empty() {
                    write!(f, "invalid document: {msg}")
                } else {
                    write!(f, "invalid field `{path}`: {msg}")
                }
            }
            TargetError::UnknownTarget { name, known } => {
                write!(f, "unknown target {name:?} (known: {})", known.join(", "))
            }
        }
    }
}

impl std::error::Error for TargetError {}
