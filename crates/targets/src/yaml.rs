//! Hand-rolled parser for the YAML subset the target descriptions use.
//!
//! The build environment is offline (no registry crates — see
//! `crates/shims/README.md` for the precedent), so this module implements
//! exactly the slice of YAML the `targets/*.yaml` files need and nothing
//! more:
//!
//! * nested mappings by two-space indentation,
//! * scalar values (`key: value`),
//! * full-line `#` comments and blank lines.
//!
//! Sequences, anchors, tags, flow collections, and multi-line scalars are
//! out of scope; a file using them is rejected with a typed
//! [`TargetError::Syntax`] instead of being misparsed. Duplicate keys are
//! rejected too — a target file where `cl:` appears twice is a bug, not a
//! last-writer-wins situation.

use crate::TargetError;

/// A parsed YAML value: either a scalar (kept verbatim as text; numeric
/// interpretation happens at typed extraction) or a nested mapping with
/// insertion-ordered keys.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A scalar leaf, stored as the raw (trimmed) text.
    Scalar(String),
    /// A nested mapping.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks a key up in a mapping. `None` for scalars and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            Value::Scalar(_) => None,
        }
    }
}

/// One significant line: source line number, indentation, `key`, and the
/// scalar remainder (if any).
struct Line {
    number: usize,
    indent: usize,
    key: String,
    value: Option<String>,
}

fn syntax(line: usize, msg: impl Into<String>) -> TargetError {
    TargetError::Syntax {
        line,
        msg: msg.into(),
    }
}

/// Splits the input into significant lines, rejecting constructs outside
/// the subset (tabs, sequences, flow collections).
fn scan(input: &str) -> Result<Vec<Line>, TargetError> {
    let mut lines = Vec::new();
    for (idx, raw) in input.lines().enumerate() {
        let number = idx + 1;
        if raw.trim().is_empty() || raw.trim_start().starts_with('#') {
            continue;
        }
        if raw.contains('\t') {
            return Err(syntax(number, "tabs are not allowed; indent with spaces"));
        }
        let indent = raw.len() - raw.trim_start().len();
        let content = raw.trim();
        if content.starts_with('-') {
            return Err(syntax(
                number,
                "sequences are not part of the target format",
            ));
        }
        let Some(colon) = content.find(':') else {
            return Err(syntax(
                number,
                format!("expected `key: value`, got {content:?}"),
            ));
        };
        let key = content[..colon].trim();
        if key.is_empty() {
            return Err(syntax(number, "empty key"));
        }
        let rest = content[colon + 1..].trim();
        if rest.starts_with('{') || rest.starts_with('[') || rest.starts_with('&') {
            return Err(syntax(
                number,
                "flow collections and anchors are not part of the target format",
            ));
        }
        lines.push(Line {
            number,
            indent,
            key: key.to_string(),
            value: (!rest.is_empty()).then(|| rest.to_string()),
        });
    }
    Ok(lines)
}

/// Parses the lines starting at `*pos` as one mapping at exactly `indent`
/// columns. Stops (without consuming) at the first line shallower than
/// `indent`.
fn parse_map(
    lines: &[Line],
    pos: &mut usize,
    indent: usize,
) -> Result<Vec<(String, Value)>, TargetError> {
    let mut entries: Vec<(String, Value)> = Vec::new();
    while *pos < lines.len() {
        let line = &lines[*pos];
        if line.indent < indent {
            break;
        }
        if line.indent > indent {
            return Err(syntax(
                line.number,
                format!(
                    "unexpected indentation of {} (expected {})",
                    line.indent, indent
                ),
            ));
        }
        if entries.iter().any(|(k, _)| *k == line.key) {
            return Err(syntax(line.number, format!("duplicate key {:?}", line.key)));
        }
        *pos += 1;
        let value = match &line.value {
            Some(scalar) => Value::Scalar(scalar.clone()),
            None => {
                // A key with no scalar introduces a nested mapping; its
                // children define the deeper indentation level.
                let Some(child) = lines.get(*pos) else {
                    return Err(syntax(
                        line.number,
                        format!("mapping {:?} has no entries", line.key),
                    ));
                };
                if child.indent <= indent {
                    return Err(syntax(
                        line.number,
                        format!("mapping {:?} has no entries", line.key),
                    ));
                }
                Value::Map(parse_map(lines, pos, child.indent)?)
            }
        };
        entries.push((line.key.clone(), value));
    }
    Ok(entries)
}

/// Parses a whole document into its top-level mapping.
pub fn parse(input: &str) -> Result<Value, TargetError> {
    let lines = scan(input)?;
    if lines.is_empty() {
        return Err(syntax(0, "empty document"));
    }
    if lines[0].indent != 0 {
        return Err(syntax(
            lines[0].number,
            "top-level keys must not be indented",
        ));
    }
    let mut pos = 0;
    let map = parse_map(&lines, &mut pos, 0)?;
    debug_assert_eq!(
        pos,
        lines.len(),
        "parse_map at indent 0 consumes everything"
    );
    Ok(Value::Map(map))
}

/// A typed extraction cursor: a mapping plus the dotted path that led to
/// it, so every error names the exact field (`dram.timing.cl`).
#[derive(Debug)]
pub struct Section<'a> {
    entries: &'a [(String, Value)],
    path: String,
    /// Keys read so far, for the final unknown-key sweep.
    seen: Vec<&'a str>,
}

impl<'a> Section<'a> {
    /// Wraps a parsed document root.
    pub fn root(value: &'a Value) -> Result<Section<'a>, TargetError> {
        match value {
            Value::Map(entries) => Ok(Section {
                entries,
                path: String::new(),
                seen: Vec::new(),
            }),
            Value::Scalar(_) => Err(TargetError::Invalid {
                path: String::new(),
                msg: "document root must be a mapping".into(),
            }),
        }
    }

    fn join(&self, key: &str) -> String {
        if self.path.is_empty() {
            key.to_string()
        } else {
            format!("{}.{key}", self.path)
        }
    }

    fn fetch(&mut self, key: &'a str) -> Result<&'a Value, TargetError> {
        self.seen.push(key);
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| TargetError::MissingField {
                path: self.join(key),
            })
    }

    /// Descends into a nested mapping.
    pub fn child(&mut self, key: &'a str) -> Result<Section<'a>, TargetError> {
        let path = self.join(key);
        match self.fetch(key)? {
            Value::Map(entries) => Ok(Section {
                entries,
                path,
                seen: Vec::new(),
            }),
            Value::Scalar(_) => Err(TargetError::Invalid {
                path,
                msg: "expected a mapping, found a scalar".into(),
            }),
        }
    }

    fn scalar(&mut self, key: &'a str) -> Result<(&'a str, String), TargetError> {
        let path = self.join(key);
        match self.fetch(key)? {
            Value::Scalar(s) => Ok((s.as_str(), path)),
            Value::Map(_) => Err(TargetError::Invalid {
                path,
                msg: "expected a scalar, found a mapping".into(),
            }),
        }
    }

    /// Reads a string field.
    pub fn str(&mut self, key: &'a str) -> Result<String, TargetError> {
        Ok(self.scalar(key)?.0.to_string())
    }

    /// Reads an unsigned integer field.
    pub fn u64(&mut self, key: &'a str) -> Result<u64, TargetError> {
        let (raw, path) = self.scalar(key)?;
        raw.parse().map_err(|_| TargetError::Invalid {
            path,
            msg: format!("expected an unsigned integer, got {raw:?}"),
        })
    }

    /// Reads a float field (plain integers are accepted too).
    pub fn f64(&mut self, key: &'a str) -> Result<f64, TargetError> {
        let (raw, path) = self.scalar(key)?;
        let v: f64 = raw.parse().map_err(|_| TargetError::Invalid {
            path: path.clone(),
            msg: format!("expected a number, got {raw:?}"),
        })?;
        if !v.is_finite() {
            return Err(TargetError::Invalid {
                path,
                msg: "expected a finite number".into(),
            });
        }
        Ok(v)
    }

    /// Rejects keys the schema does not know — a typo like `c1:` for `cl:`
    /// must fail loudly, not silently leave the real field missing-with-
    /// default semantics.
    pub fn finish(self) -> Result<(), TargetError> {
        for (k, _) in self.entries {
            if !self.seen.contains(&k.as_str()) {
                return Err(TargetError::Invalid {
                    path: self.join(k),
                    msg: "unknown field".into(),
                });
            }
        }
        Ok(())
    }
}

/// Serializer: writes one `key: value` or nested block. Floats use Rust's
/// shortest round-trip formatting, so parse(render(x)) == x exactly.
pub struct Writer {
    out: String,
}

impl Writer {
    /// Creates an empty document, optionally led by comment lines.
    pub fn new(header: &[&str]) -> Self {
        let mut out = String::new();
        for line in header {
            out.push_str("# ");
            out.push_str(line);
            out.push('\n');
        }
        Self { out }
    }

    fn indent(&mut self, depth: usize) {
        for _ in 0..depth {
            self.out.push_str("  ");
        }
    }

    /// Writes a scalar field.
    pub fn scalar(&mut self, depth: usize, key: &str, value: impl std::fmt::Display) {
        self.indent(depth);
        self.out.push_str(key);
        self.out.push_str(": ");
        self.out.push_str(&value.to_string());
        self.out.push('\n');
    }

    /// Opens a nested mapping.
    pub fn section(&mut self, depth: usize, key: &str) {
        self.indent(depth);
        self.out.push_str(key);
        self.out.push_str(":\n");
    }

    /// Finishes the document.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_maps_and_scalars() {
        let doc = parse("a: 1\nb:\n  c: x\n  d:\n    e: 2.5\nf: hello world\n").unwrap();
        assert_eq!(doc.get("a"), Some(&Value::Scalar("1".into())));
        let b = doc.get("b").unwrap();
        assert_eq!(b.get("c"), Some(&Value::Scalar("x".into())));
        assert_eq!(
            b.get("d").unwrap().get("e"),
            Some(&Value::Scalar("2.5".into()))
        );
        assert_eq!(doc.get("f"), Some(&Value::Scalar("hello world".into())));
    }

    #[test]
    fn skips_comments_and_blanks() {
        let doc = parse("# header\n\na: 1\n# mid\nb: 2\n").unwrap();
        assert!(doc.get("a").is_some() && doc.get("b").is_some());
    }

    #[test]
    fn rejects_outside_subset() {
        for (input, want) in [
            ("a:\n- 1\n", "sequences"),
            ("a: {b: 1}\n", "flow"),
            ("a:\tb\n", "tabs"),
            ("just text\n", "expected"),
            ("a: 1\na: 2\n", "duplicate"),
            ("a:\n", "no entries"),
            ("", "empty document"),
            ("  a: 1\n", "top-level"),
        ] {
            let err = parse(input).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains(want),
                "{input:?}: expected {want:?} in {msg:?}"
            );
        }
    }

    #[test]
    fn section_errors_carry_dotted_paths() {
        let doc = parse("outer:\n  inner:\n    x: 1\n").unwrap();
        let mut root = Section::root(&doc).unwrap();
        let mut outer = root.child("outer").unwrap();
        let mut inner = outer.child("inner").unwrap();
        let err = inner.u64("missing").unwrap_err();
        assert_eq!(err.to_string(), "missing field `outer.inner.missing`");
        let err2 = Section::root(&doc).unwrap().child("nope").unwrap_err();
        assert!(matches!(err2, TargetError::MissingField { .. }));
    }

    #[test]
    fn unknown_keys_rejected_on_finish() {
        let doc = parse("a: 1\nextra: 2\n").unwrap();
        let mut root = Section::root(&doc).unwrap();
        root.u64("a").unwrap();
        let err = root.finish().unwrap_err();
        assert!(err.to_string().contains("unknown field"), "{err}");
    }

    #[test]
    fn writer_round_trips() {
        let mut w = Writer::new(&["generated"]);
        w.scalar(0, "name", "x");
        w.section(0, "nested");
        w.scalar(1, "v", 0.082_f64);
        w.scalar(1, "n", 9360_u64);
        let text = w.finish();
        let doc = parse(&text).unwrap();
        assert_eq!(
            doc.get("nested").unwrap().get("v"),
            Some(&Value::Scalar("0.082".into()))
        );
    }
}
