//! The typed hardware target description and its (de)serialization.

use crate::yaml::{self, Section, Writer};
use crate::TargetError;

/// DDR core timing parameters, in memory-clock cycles. Field-for-field the
/// set the DRAM channel scheduler consumes (`guardnn_dram::DdrTiming` is
/// constructed from this spec).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimingSpec {
    /// CAS latency (READ command → first data).
    pub cl: u64,
    /// RAS-to-CAS delay (ACT → READ/WRITE).
    pub rcd: u64,
    /// Row precharge time (PRE → ACT).
    pub rp: u64,
    /// Minimum row-open time (ACT → PRE).
    pub ras: u64,
    /// Column-to-column delay, same bank group.
    pub ccd_l: u64,
    /// Column-to-column delay, different bank group.
    pub ccd_s: u64,
    /// ACT-to-ACT delay to different banks.
    pub rrd: u64,
    /// Four-activate window.
    pub faw: u64,
    /// Write recovery time.
    pub wr: u64,
    /// Write-to-read turnaround.
    pub wtr: u64,
    /// Read-to-write turnaround.
    pub rtw: u64,
    /// Refresh cycle time.
    pub rfc: u64,
    /// Average refresh interval.
    pub refi: u64,
    /// Burst length in beats.
    pub bl: u64,
}

/// DRAM system geometry plus its speed bin.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DramSpec {
    /// Independent channels.
    pub channels: u64,
    /// Ranks per channel.
    pub ranks: u64,
    /// Bank groups per rank.
    pub bank_groups: u64,
    /// Banks per bank group.
    pub banks_per_group: u64,
    /// Row-buffer page size per bank, bytes.
    pub row_bytes: u64,
    /// Transaction granularity, bytes.
    pub access_bytes: u64,
    /// Memory clock, MHz (data rate is 2×).
    pub clock_mhz: u64,
    /// FR-FCFS reordering window.
    pub sched_window: u64,
    /// Core timing parameters.
    pub timing: TimingSpec,
}

/// Systolic-array dataflow named in a target file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataflowSpec {
    /// Weights resident in PEs (`weight-stationary`).
    WeightStationary,
    /// Output partial sums resident (`output-stationary`).
    OutputStationary,
    /// Inputs resident (`input-stationary`).
    InputStationary,
}

impl DataflowSpec {
    fn parse(raw: &str, path: String) -> Result<Self, TargetError> {
        match raw {
            "weight-stationary" => Ok(Self::WeightStationary),
            "output-stationary" => Ok(Self::OutputStationary),
            "input-stationary" => Ok(Self::InputStationary),
            other => Err(TargetError::Invalid {
                path,
                msg: format!(
                    "unknown dataflow {other:?} (expected weight-stationary, \
                     output-stationary, or input-stationary)"
                ),
            }),
        }
    }

    /// The file-format name of this dataflow.
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::WeightStationary => "weight-stationary",
            Self::OutputStationary => "output-stationary",
            Self::InputStationary => "input-stationary",
        }
    }
}

/// Systolic-array geometry and on-chip memory.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ArraySpec {
    /// PE rows.
    pub rows: u64,
    /// PE columns.
    pub cols: u64,
    /// GEMM mapping dataflow.
    pub dataflow: DataflowSpec,
    /// Activation-buffer SRAM, bytes.
    pub sram_act_bytes: u64,
    /// Weight-buffer SRAM, bytes.
    pub sram_wgt_bytes: u64,
    /// Output-buffer SRAM, bytes.
    pub sram_out_bytes: u64,
    /// Core clock, MHz.
    pub clock_mhz: u64,
}

/// MicroBlaze-class security-firmware latency profile.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MicroblazeSpec {
    /// Full ECDHE–ECDSA handshake (`GetPK` + `InitSession`), milliseconds.
    pub handshake_ms: f64,
    /// Sustained one-direction AES re-encryption bandwidth, GB/s.
    pub reencrypt_gbps: f64,
    /// Fixed per-instruction firmware overhead, microseconds.
    pub fixed_overhead_us: f64,
    /// Report hashing time for `SignOutput`, milliseconds.
    pub report_hash_ms: f64,
}

/// One block's FPGA resource usage (or, for `base_design`, the fractions
/// it is derived from).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResourceSpec {
    /// Look-up tables.
    pub luts: f64,
    /// Flip-flops.
    pub ffs: f64,
    /// Block RAMs.
    pub brams: f64,
    /// DSP slices.
    pub dsps: f64,
}

/// The base-design footprint, expressed the way datasheets and the paper
/// do: as the fraction of the base each measured GuardNN component
/// occupies (AES core for logic, microcontroller for BRAM/DSP).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BaseDesignSpec {
    /// AES-core LUTs as a fraction of the base design's LUTs.
    pub aes_lut_fraction: f64,
    /// AES-core FFs as a fraction of the base design's FFs.
    pub aes_ff_fraction: f64,
    /// Microcontroller BRAMs as a fraction of the base design's BRAMs.
    pub microblaze_bram_fraction: f64,
    /// Microcontroller DSPs as a fraction of the base design's DSPs.
    pub microblaze_dsp_fraction: f64,
}

/// FPGA prototype point: accelerator sizing plus the resource table.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FpgaSpec {
    /// DSP blocks allocated to the MAC array.
    pub dsps: u64,
    /// Fabric clock, MHz.
    pub clock_mhz: f64,
    /// Compute efficiency (fraction of peak MACs the HLS design sustains).
    pub compute_efficiency: f64,
    /// DDR bandwidth available to the accelerator, GB/s.
    pub mem_bw_gbps: f64,
    /// Pipelined AES-128 engines.
    pub aes_engines: u64,
    /// Fixed per-layer launch overhead, microseconds.
    pub layer_overhead_us: f64,
    /// One AES-128 core's resources.
    pub aes_core: ResourceSpec,
    /// The microcontroller's resources.
    pub microblaze: ResourceSpec,
    /// Base-design derivation fractions.
    pub base_design: BaseDesignSpec,
}

/// One complete hardware point: everything the simulators and analytic
/// models need to evaluate GuardNN on it.
#[derive(Clone, Debug, PartialEq)]
pub struct HardwareTarget {
    /// Registry key (`guardnn-paper`, `ddr4-3200`, ...).
    pub name: String,
    /// One-line human description.
    pub description: String,
    /// DRAM geometry and speed bin.
    pub dram: DramSpec,
    /// Systolic-array geometry.
    pub array: ArraySpec,
    /// Security-firmware latency profile.
    pub microblaze: MicroblazeSpec,
    /// FPGA prototype point.
    pub fpga: FpgaSpec,
}

fn read_resources(
    section: &mut Section<'_>,
    key: &'static str,
) -> Result<ResourceSpec, TargetError> {
    let mut s = section.child(key)?;
    let spec = ResourceSpec {
        luts: s.f64("luts")?,
        ffs: s.f64("ffs")?,
        brams: s.f64("brams")?,
        dsps: s.f64("dsps")?,
    };
    s.finish()?;
    Ok(spec)
}

impl HardwareTarget {
    /// Parses one target description. Every schema violation — missing
    /// field, unknown field, wrong type — comes back as a typed
    /// [`TargetError`]; the result is additionally validated
    /// ([`HardwareTarget::validate`]), so a successfully returned target
    /// is usable as-is.
    pub fn parse(input: &str) -> Result<HardwareTarget, TargetError> {
        let doc = yaml::parse(input)?;
        let mut root = Section::root(&doc)?;
        let name = root.str("name")?;
        let description = root.str("description")?;

        let mut dram = root.child("dram")?;
        let mut timing = dram.child("timing")?;
        let timing_spec = TimingSpec {
            cl: timing.u64("cl")?,
            rcd: timing.u64("rcd")?,
            rp: timing.u64("rp")?,
            ras: timing.u64("ras")?,
            ccd_l: timing.u64("ccd_l")?,
            ccd_s: timing.u64("ccd_s")?,
            rrd: timing.u64("rrd")?,
            faw: timing.u64("faw")?,
            wr: timing.u64("wr")?,
            wtr: timing.u64("wtr")?,
            rtw: timing.u64("rtw")?,
            rfc: timing.u64("rfc")?,
            refi: timing.u64("refi")?,
            bl: timing.u64("bl")?,
        };
        timing.finish()?;
        let dram_spec = DramSpec {
            channels: dram.u64("channels")?,
            ranks: dram.u64("ranks")?,
            bank_groups: dram.u64("bank_groups")?,
            banks_per_group: dram.u64("banks_per_group")?,
            row_bytes: dram.u64("row_bytes")?,
            access_bytes: dram.u64("access_bytes")?,
            clock_mhz: dram.u64("clock_mhz")?,
            sched_window: dram.u64("sched_window")?,
            timing: timing_spec,
        };
        dram.finish()?;

        let mut array = root.child("array")?;
        let dataflow_raw = array.str("dataflow")?;
        let array_spec = ArraySpec {
            rows: array.u64("rows")?,
            cols: array.u64("cols")?,
            dataflow: DataflowSpec::parse(&dataflow_raw, "array.dataflow".into())?,
            sram_act_bytes: array.u64("sram_act_bytes")?,
            sram_wgt_bytes: array.u64("sram_wgt_bytes")?,
            sram_out_bytes: array.u64("sram_out_bytes")?,
            clock_mhz: array.u64("clock_mhz")?,
        };
        array.finish()?;

        let mut micro = root.child("microblaze")?;
        let micro_spec = MicroblazeSpec {
            handshake_ms: micro.f64("handshake_ms")?,
            reencrypt_gbps: micro.f64("reencrypt_gbps")?,
            fixed_overhead_us: micro.f64("fixed_overhead_us")?,
            report_hash_ms: micro.f64("report_hash_ms")?,
        };
        micro.finish()?;

        let mut fpga = root.child("fpga")?;
        let dsps = fpga.u64("dsps")?;
        let clock_mhz = fpga.f64("clock_mhz")?;
        let compute_efficiency = fpga.f64("compute_efficiency")?;
        let mem_bw_gbps = fpga.f64("mem_bw_gbps")?;
        let aes_engines = fpga.u64("aes_engines")?;
        let layer_overhead_us = fpga.f64("layer_overhead_us")?;
        let aes_core = read_resources(&mut fpga, "aes_core")?;
        let microblaze_res = read_resources(&mut fpga, "microblaze")?;
        let mut base = fpga.child("base_design")?;
        let base_design = BaseDesignSpec {
            aes_lut_fraction: base.f64("aes_lut_fraction")?,
            aes_ff_fraction: base.f64("aes_ff_fraction")?,
            microblaze_bram_fraction: base.f64("microblaze_bram_fraction")?,
            microblaze_dsp_fraction: base.f64("microblaze_dsp_fraction")?,
        };
        base.finish()?;
        let fpga_spec = FpgaSpec {
            dsps,
            clock_mhz,
            compute_efficiency,
            mem_bw_gbps,
            aes_engines,
            layer_overhead_us,
            aes_core,
            microblaze: microblaze_res,
            base_design,
        };
        fpga.finish()?;
        root.finish()?;

        let target = HardwareTarget {
            name,
            description,
            dram: dram_spec,
            array: array_spec,
            microblaze: micro_spec,
            fpga: fpga_spec,
        };
        target.validate()?;
        Ok(target)
    }

    /// Semantic validation beyond the schema: zero-sized structures,
    /// inconsistent timing, and out-of-range fractions are rejected with
    /// the offending field's path.
    pub fn validate(&self) -> Result<(), TargetError> {
        fn bad(path: &str, msg: impl Into<String>) -> Result<(), TargetError> {
            Err(TargetError::Invalid {
                path: path.into(),
                msg: msg.into(),
            })
        }
        if self.name.is_empty() {
            return bad("name", "must not be empty");
        }
        if self
            .name
            .chars()
            .any(|c| !(c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'))
        {
            return bad("name", "must be lower-case kebab (a-z, 0-9, -)");
        }
        let d = &self.dram;
        for (path, v) in [
            ("dram.channels", d.channels),
            ("dram.ranks", d.ranks),
            ("dram.bank_groups", d.bank_groups),
            ("dram.banks_per_group", d.banks_per_group),
            ("dram.access_bytes", d.access_bytes),
            ("dram.clock_mhz", d.clock_mhz),
            ("dram.sched_window", d.sched_window),
        ] {
            if v == 0 {
                return bad(path, "must be at least 1");
            }
        }
        if d.row_bytes < d.access_bytes {
            return bad("dram.row_bytes", "must be at least one access granule");
        }
        let t = &d.timing;
        for (path, v) in [
            ("dram.timing.cl", t.cl),
            ("dram.timing.rcd", t.rcd),
            ("dram.timing.rp", t.rp),
            ("dram.timing.ras", t.ras),
            ("dram.timing.ccd_l", t.ccd_l),
            ("dram.timing.ccd_s", t.ccd_s),
            ("dram.timing.rrd", t.rrd),
            ("dram.timing.faw", t.faw),
            ("dram.timing.wr", t.wr),
            ("dram.timing.wtr", t.wtr),
            ("dram.timing.rtw", t.rtw),
            ("dram.timing.rfc", t.rfc),
            ("dram.timing.refi", t.refi),
        ] {
            if v == 0 {
                return bad(path, "must be at least 1");
            }
        }
        if t.bl < 2 || !t.bl.is_multiple_of(2) {
            return bad("dram.timing.bl", "burst length must be even and at least 2");
        }
        if t.ccd_s > t.ccd_l {
            return bad(
                "dram.timing.ccd_s",
                "cross-group delay cannot exceed same-group delay",
            );
        }
        if t.refi <= t.rfc {
            return bad(
                "dram.timing.refi",
                "refresh interval must exceed the refresh cycle time (the bus would never be free)",
            );
        }
        let a = &self.array;
        if a.rows == 0 || a.cols == 0 {
            return bad("array.rows", "a zero-sized PE array cannot compute");
        }
        for (path, v) in [
            ("array.sram_act_bytes", a.sram_act_bytes),
            ("array.sram_wgt_bytes", a.sram_wgt_bytes),
            ("array.sram_out_bytes", a.sram_out_bytes),
            ("array.clock_mhz", a.clock_mhz),
        ] {
            if v == 0 {
                return bad(path, "must be at least 1");
            }
        }
        let m = &self.microblaze;
        for (path, v) in [
            ("microblaze.handshake_ms", m.handshake_ms),
            ("microblaze.reencrypt_gbps", m.reencrypt_gbps),
            ("microblaze.fixed_overhead_us", m.fixed_overhead_us),
            ("microblaze.report_hash_ms", m.report_hash_ms),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return bad(path, "must be positive");
            }
        }
        let f = &self.fpga;
        if f.dsps == 0 {
            return bad("fpga.dsps", "must be at least 1");
        }
        if f.aes_engines == 0 {
            return bad("fpga.aes_engines", "must be at least 1");
        }
        for (path, v) in [
            ("fpga.clock_mhz", f.clock_mhz),
            ("fpga.mem_bw_gbps", f.mem_bw_gbps),
            ("fpga.layer_overhead_us", f.layer_overhead_us),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return bad(path, "must be positive");
            }
        }
        if !(f.compute_efficiency > 0.0 && f.compute_efficiency <= 1.0) {
            return bad("fpga.compute_efficiency", "must be in (0, 1]");
        }
        for (path, v) in [
            (
                "fpga.base_design.aes_lut_fraction",
                f.base_design.aes_lut_fraction,
            ),
            (
                "fpga.base_design.aes_ff_fraction",
                f.base_design.aes_ff_fraction,
            ),
            (
                "fpga.base_design.microblaze_bram_fraction",
                f.base_design.microblaze_bram_fraction,
            ),
            (
                "fpga.base_design.microblaze_dsp_fraction",
                f.base_design.microblaze_dsp_fraction,
            ),
        ] {
            if !(v > 0.0 && v <= 1.0) {
                return bad(path, "must be a fraction in (0, 1]");
            }
        }
        for (path, r) in [
            ("fpga.aes_core", &f.aes_core),
            ("fpga.microblaze", &f.microblaze),
        ] {
            for (field, v) in [
                ("luts", r.luts),
                ("ffs", r.ffs),
                ("brams", r.brams),
                ("dsps", r.dsps),
            ] {
                if !v.is_finite() || v < 0.0 {
                    return bad(&format!("{path}.{field}"), "must be non-negative");
                }
            }
        }
        Ok(())
    }

    /// Serializes back to the text format. `parse(to_yaml(t)) == t` exactly
    /// (floats print with shortest round-trip formatting); the registry
    /// round-trip test pins this for every embedded file.
    pub fn to_yaml(&self) -> String {
        let mut w = Writer::new(&[
            "GuardNN hardware target description.",
            "Format: see crates/targets (a YAML subset: nested maps + scalars).",
        ]);
        w.scalar(0, "name", &self.name);
        w.scalar(0, "description", &self.description);
        w.section(0, "dram");
        let d = &self.dram;
        w.scalar(1, "channels", d.channels);
        w.scalar(1, "ranks", d.ranks);
        w.scalar(1, "bank_groups", d.bank_groups);
        w.scalar(1, "banks_per_group", d.banks_per_group);
        w.scalar(1, "row_bytes", d.row_bytes);
        w.scalar(1, "access_bytes", d.access_bytes);
        w.scalar(1, "clock_mhz", d.clock_mhz);
        w.scalar(1, "sched_window", d.sched_window);
        w.section(1, "timing");
        let t = &d.timing;
        for (key, v) in [
            ("cl", t.cl),
            ("rcd", t.rcd),
            ("rp", t.rp),
            ("ras", t.ras),
            ("ccd_l", t.ccd_l),
            ("ccd_s", t.ccd_s),
            ("rrd", t.rrd),
            ("faw", t.faw),
            ("wr", t.wr),
            ("wtr", t.wtr),
            ("rtw", t.rtw),
            ("rfc", t.rfc),
            ("refi", t.refi),
            ("bl", t.bl),
        ] {
            w.scalar(2, key, v);
        }
        w.section(0, "array");
        let a = &self.array;
        w.scalar(1, "rows", a.rows);
        w.scalar(1, "cols", a.cols);
        w.scalar(1, "dataflow", a.dataflow.as_str());
        w.scalar(1, "sram_act_bytes", a.sram_act_bytes);
        w.scalar(1, "sram_wgt_bytes", a.sram_wgt_bytes);
        w.scalar(1, "sram_out_bytes", a.sram_out_bytes);
        w.scalar(1, "clock_mhz", a.clock_mhz);
        w.section(0, "microblaze");
        let m = &self.microblaze;
        w.scalar(1, "handshake_ms", m.handshake_ms);
        w.scalar(1, "reencrypt_gbps", m.reencrypt_gbps);
        w.scalar(1, "fixed_overhead_us", m.fixed_overhead_us);
        w.scalar(1, "report_hash_ms", m.report_hash_ms);
        w.section(0, "fpga");
        let f = &self.fpga;
        w.scalar(1, "dsps", f.dsps);
        w.scalar(1, "clock_mhz", f.clock_mhz);
        w.scalar(1, "compute_efficiency", f.compute_efficiency);
        w.scalar(1, "mem_bw_gbps", f.mem_bw_gbps);
        w.scalar(1, "aes_engines", f.aes_engines);
        w.scalar(1, "layer_overhead_us", f.layer_overhead_us);
        for (key, r) in [("aes_core", &f.aes_core), ("microblaze", &f.microblaze)] {
            w.section(1, key);
            w.scalar(2, "luts", r.luts);
            w.scalar(2, "ffs", r.ffs);
            w.scalar(2, "brams", r.brams);
            w.scalar(2, "dsps", r.dsps);
        }
        w.section(1, "base_design");
        let b = &f.base_design;
        w.scalar(2, "aes_lut_fraction", b.aes_lut_fraction);
        w.scalar(2, "aes_ff_fraction", b.aes_ff_fraction);
        w.scalar(2, "microblaze_bram_fraction", b.microblaze_bram_fraction);
        w.scalar(2, "microblaze_dsp_fraction", b.microblaze_dsp_fraction);
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A known-good document to mutate from (the paper target's source).
    fn good() -> String {
        crate::registry::source("guardnn-paper")
            .unwrap()
            .to_string()
    }

    #[test]
    fn missing_timing_field_is_typed_missing_field() {
        let broken = good().replace("    rcd: 17\n", "");
        let err = HardwareTarget::parse(&broken).unwrap_err();
        assert_eq!(
            err,
            TargetError::MissingField {
                path: "dram.timing.rcd".into()
            }
        );
    }

    #[test]
    fn zero_sized_array_is_rejected() {
        let broken = good().replace("  rows: 256\n", "  rows: 0\n");
        let err = HardwareTarget::parse(&broken).unwrap_err();
        match err {
            TargetError::Invalid { path, msg } => {
                assert_eq!(path, "array.rows");
                assert!(msg.contains("zero-sized"), "{msg}");
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn semantic_violations_name_the_field() {
        for (from, to, want_path) in [
            ("    bl: 8\n", "    bl: 7\n", "dram.timing.bl"),
            ("    refi: 9360\n", "    refi: 100\n", "dram.timing.refi"),
            ("    ccd_s: 4\n", "    ccd_s: 9\n", "dram.timing.ccd_s"),
            ("  row_bytes: 8192\n", "  row_bytes: 32\n", "dram.row_bytes"),
            (
                "  compute_efficiency: 0.75\n",
                "  compute_efficiency: 1.5\n",
                "fpga.compute_efficiency",
            ),
            (
                "  handshake_ms: 23.1\n",
                "  handshake_ms: -1\n",
                "microblaze.handshake_ms",
            ),
        ] {
            let broken = good().replace(from, to);
            assert_ne!(broken, good(), "replacement {from:?} did not apply");
            match HardwareTarget::parse(&broken).unwrap_err() {
                TargetError::Invalid { path, .. } => assert_eq!(path, want_path),
                other => panic!("{from:?}: expected Invalid, got {other:?}"),
            }
        }
    }

    #[test]
    fn wrong_type_and_unknown_field_are_typed() {
        let wrong_type = good().replace("    cl: 17\n", "    cl: seventeen\n");
        match HardwareTarget::parse(&wrong_type).unwrap_err() {
            TargetError::Invalid { path, msg } => {
                assert_eq!(path, "dram.timing.cl");
                assert!(msg.contains("unsigned integer"), "{msg}");
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
        let extra = good().replace("    cl: 17\n", "    cl: 17\n    c1: 17\n");
        match HardwareTarget::parse(&extra).unwrap_err() {
            TargetError::Invalid { path, msg } => {
                assert_eq!(path, "dram.timing.c1");
                assert_eq!(msg, "unknown field");
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn bad_dataflow_is_rejected_with_candidates() {
        let broken = good().replace("dataflow: weight-stationary", "dataflow: row-stationary");
        match HardwareTarget::parse(&broken).unwrap_err() {
            TargetError::Invalid { path, msg } => {
                assert_eq!(path, "array.dataflow");
                assert!(msg.contains("output-stationary"), "{msg}");
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn dataflow_names_round_trip() {
        for df in [
            DataflowSpec::WeightStationary,
            DataflowSpec::OutputStationary,
            DataflowSpec::InputStationary,
        ] {
            assert_eq!(DataflowSpec::parse(df.as_str(), String::new()).unwrap(), df);
        }
    }
}
