//! Integration test crate for the GuardNN workspace.
//!
//! Besides hosting the cross-crate integration suites under `tests/`,
//! this crate exports the [`chaos`] security harness: a declarative
//! scenario layer that mounts scripted adversaries (malicious relays,
//! DRAM tampering, preemption storms, counter exhaustion) across the
//! full (scheme × channel-mode × parallelism) evaluation grid. The
//! harness is a library so both the in-tree chaos tests and the
//! `guardnn-bench` `chaos` binary drive the exact same matrix.

#![deny(missing_docs)]

pub mod chaos;
