//! Integration test crate for the GuardNN workspace.
