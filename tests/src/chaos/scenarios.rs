//! The scenario families: each mounts one scripted adversary against a
//! live session (or a full [`DeviceServer`] table) and its untampered
//! twin, reporting a [`ScenarioResult`] for the matrix driver to judge.
//!
//! Every scenario is self-contained — it provisions its own device(s),
//! so families can be fanned out across worker threads without sharing
//! state. The functional world has no plaintext mode, so a perf
//! [`Scheme`] maps onto the session's integrity flag via
//! [`integrity_of`](super::integrity_of).

use guardnn::adversary::{
    mount_physical_attack, park_counters, run_tampered_input_stream, AttackOutcome, Fault,
    FaultPlan, PhysicalFault,
};
use guardnn::device::{GuardNnDevice, MAX_SESSIONS};
use guardnn::fleet::{DeviceFaultPlan, DeviceId, FleetPolicy, FleetSessionId, FleetSupervisor};
use guardnn::host::UntrustedHost;
use guardnn::isa::Instruction;
use guardnn::perf::Scheme;
use guardnn::server::{DeviceServer, SessionState, StepProgress};
use guardnn::session::RemoteUser;
use guardnn::testnet;
use guardnn::GuardNnError;
use guardnn_crypto::schnorr::VerifyingKey;
use guardnn_models::Network;

use super::{integrity_of, ChaosConfig, Outcome, ScenarioResult};

const WEIGHT_SEED: i32 = 7;

/// One established single-session world: device, user, relay host, and
/// the model both sides agreed on.
struct Rig {
    device: GuardNnDevice,
    user: RemoteUser,
    host: UntrustedHost,
    net: Network,
    weights: Vec<Vec<i32>>,
}

fn rig(scheme: Scheme, cfg: &ChaosConfig) -> Result<Rig, GuardNnError> {
    let net = testnet::tiny_mlp();
    let weights = testnet::tiny_mlp_weights(WEIGHT_SEED);
    let (mut device, maker_pk) = GuardNnDevice::provision(cfg.seed ^ 0xD00D, cfg.seed ^ 0xFA);
    let mut user = RemoteUser::new(maker_pk, cfg.seed ^ 0x5EED);
    let mut host = UntrustedHost::new();
    host.establish(&mut device, &mut user, &net, &weights, integrity_of(scheme))?;
    Ok(Rig {
        device,
        user,
        host,
        net,
        weights,
    })
}

/// A deterministic 8-element input derived from `seed`.
fn base_input(seed: u64) -> Vec<i32> {
    (0..8)
        .map(|i| ((seed as i64 + i * 3) % 17 - 8) as i32)
        .collect()
}

/// Shared clean twin: a fresh rig's honest inference must be bit-exact
/// against the unprotected reference computation.
fn clean_twin(scheme: Scheme, cfg: &ChaosConfig) -> Result<bool, GuardNnError> {
    let mut c = rig(scheme, cfg)?;
    let input = base_input(cfg.seed);
    let (out, _) = c.host.infer(&mut c.device, &mut c.user, &c.net, &input)?;
    Ok(out == testnet::tiny_mlp_reference(&c.weights, &input))
}

// ---------------------------------------------------------------------------
// Malicious-relay families: the host tampers with the sealed stream.
// ---------------------------------------------------------------------------

/// Drives a stream of sealed inputs through a [`MessageTap`] running
/// `fault` mid-stream. The injection point is clamped so drop/reorder
/// always have a successor message to surface on.
///
/// [`MessageTap`]: guardnn::adversary::MessageTap
fn host_fault(
    scheme: Scheme,
    cfg: &ChaosConfig,
    fault: Fault,
) -> Result<ScenarioResult, GuardNnError> {
    let len = cfg.stream_len.max(2);
    let inputs: Vec<Vec<i32>> = (0..len)
        .map(|k| base_input(cfg.seed.wrapping_add(k as u64)))
        .collect();
    let at = (len / 2).min(len - 2);
    let mut r = rig(scheme, cfg)?;
    let (_, err) =
        run_tampered_input_stream(&mut r.device, &mut r.user, &inputs, FaultPlan { fault, at })?;
    let tampered = match err {
        Some(e) => Outcome::Detected(e.name()),
        None => Outcome::Clean,
    };
    Ok(ScenarioResult {
        tampered,
        clean: clean_twin(scheme, cfg)?,
    })
}

pub(super) fn host_drop(s: Scheme, cfg: &ChaosConfig) -> Result<ScenarioResult, GuardNnError> {
    host_fault(s, cfg, Fault::Drop)
}

pub(super) fn host_replay(s: Scheme, cfg: &ChaosConfig) -> Result<ScenarioResult, GuardNnError> {
    host_fault(s, cfg, Fault::Replay)
}

pub(super) fn host_reorder(s: Scheme, cfg: &ChaosConfig) -> Result<ScenarioResult, GuardNnError> {
    host_fault(s, cfg, Fault::Reorder)
}

pub(super) fn host_corrupt(s: Scheme, cfg: &ChaosConfig) -> Result<ScenarioResult, GuardNnError> {
    host_fault(s, cfg, Fault::Corrupt { byte: 11 })
}

// ---------------------------------------------------------------------------
// Physical DRAM families.
// ---------------------------------------------------------------------------

fn physical(
    scheme: Scheme,
    cfg: &ChaosConfig,
    fault: PhysicalFault,
) -> Result<ScenarioResult, GuardNnError> {
    let input = base_input(cfg.seed);
    let mut r = rig(scheme, cfg)?;
    let outcome = mount_physical_attack(
        &mut r.device,
        &mut r.user,
        &mut r.host,
        &r.net,
        &input,
        fault,
    )?;
    let tampered = match outcome {
        AttackOutcome::Detected(e) => Outcome::Detected(e.name()),
        AttackOutcome::Garbled { output, reference } => {
            if output == reference {
                Outcome::Clean
            } else {
                Outcome::Garbled
            }
        }
    };
    Ok(ScenarioResult {
        tampered,
        clean: clean_twin(scheme, cfg)?,
    })
}

pub(super) fn dram_bitflip(s: Scheme, cfg: &ChaosConfig) -> Result<ScenarioResult, GuardNnError> {
    physical(s, cfg, PhysicalFault::FeatureBitFlip { edge: 1 })
}

pub(super) fn dram_stale_replay(
    s: Scheme,
    cfg: &ChaosConfig,
) -> Result<ScenarioResult, GuardNnError> {
    physical(s, cfg, PhysicalFault::StaleFeatureReplay { edge: 1 })
}

// ---------------------------------------------------------------------------
// Server-table families.
// ---------------------------------------------------------------------------

/// Preemption storm: every session of a (clamped) full server table runs
/// one inference, single-instruction round-robin so every step context
/// switches, with session 0's read counter poisoned mid-job. The victim
/// must detect (integrity) or garble; every bystander must stay
/// bit-exact.
pub(super) fn preempt_storm(
    scheme: Scheme,
    cfg: &ChaosConfig,
) -> Result<ScenarioResult, GuardNnError> {
    let integrity = integrity_of(scheme);
    let net = testnet::tiny_mlp();
    let weights = testnet::tiny_mlp_weights(WEIGHT_SEED);
    let n = cfg.sessions.clamp(2, MAX_SESSIONS);
    let (device, maker_pk) = GuardNnDevice::provision(cfg.seed ^ 0xBEEF, cfg.seed ^ 0xB1);
    let mut server = DeviceServer::new(device);
    let mut users = Vec::with_capacity(n);
    let mut sids = Vec::with_capacity(n);
    let mut inputs = Vec::with_capacity(n);
    for i in 0..n {
        let mut user = RemoteUser::new(maker_pk.clone(), cfg.seed.wrapping_add(i as u64 * 11 + 1));
        let sid = server.connect(&mut user)?;
        server.establish(sid, &mut user, integrity)?;
        server.load_model(sid, &mut user, &net, &weights)?;
        let input = base_input(cfg.seed.wrapping_add(i as u64));
        server.begin_infer(sid, &mut user, &input)?;
        users.push(user);
        sids.push(sid);
        inputs.push(input);
    }
    // Poison the victim's edge-1 read counter with a VN it never wrote.
    server.poison_read_ctr(sids[0], 1, (1 << 32) | 77)?;

    let mut done = vec![false; n];
    let mut victim_err: Option<GuardNnError> = None;
    while done.iter().any(|d| !d) {
        for i in 0..n {
            if done[i] {
                continue;
            }
            match server.step(sids[i]) {
                Ok(StepProgress::Working) => {}
                Ok(StepProgress::Finished | StepProgress::Idle) => done[i] = true,
                Err(e) if i == 0 => {
                    victim_err = Some(e);
                    server.cancel_jobs(sids[0])?;
                    done[0] = true;
                }
                Err(e) => return Err(e),
            }
        }
    }
    let tampered = match victim_err {
        Some(e) => Outcome::Detected(e.name()),
        None => {
            let reference = testnet::tiny_mlp_reference(&weights, &inputs[0]);
            match server.take_output(sids[0], &mut users[0])? {
                Some(out) if out == reference => Outcome::Clean,
                _ => Outcome::Garbled,
            }
        }
    };
    // Clean part: the schedule really did context-switch per step, and
    // every bystander's output is bit-exact despite the storm.
    let mut clean = server.stats().count("SELECTSESSION") >= n as u64;
    for i in 1..n {
        let reference = testnet::tiny_mlp_reference(&weights, &inputs[i]);
        let out = server.take_output(sids[i], &mut users[i])?;
        clean &= out.as_deref() == Some(reference.as_slice());
    }
    Ok(ScenarioResult { tampered, clean })
}

/// Mid-batch cancellation churn: three queued jobs, cancelled four
/// instructions in (one sealed input delivered, two flushed), then a
/// fresh batch must be bit-exact; finally a corrupted sealed wire is
/// injected and must be refused.
pub(super) fn cancel_churn(
    scheme: Scheme,
    cfg: &ChaosConfig,
) -> Result<ScenarioResult, GuardNnError> {
    let integrity = integrity_of(scheme);
    let net = testnet::tiny_mlp();
    let weights = testnet::tiny_mlp_weights(WEIGHT_SEED);
    let (device, maker_pk) = GuardNnDevice::provision(cfg.seed ^ 0xCAFE, cfg.seed ^ 0xC2);
    let mut server = DeviceServer::new(device);
    let mut user = RemoteUser::new(maker_pk, cfg.seed ^ 0xAB);
    let sid = server.connect(&mut user)?;
    server.establish(sid, &mut user, integrity)?;
    server.load_model(sid, &mut user, &net, &weights)?;

    let batch: Vec<Vec<i32>> = (0..3).map(|k| vec![k + 1; 8]).collect();
    for input in &batch {
        server.begin_infer(sid, &mut user, input)?;
    }
    for _ in 0..4 {
        server.step(sid)?;
    }
    let mut clean = server.cancel_jobs(sid)? == batch.len();
    let outputs = server.infer_batch(sid, &mut user, &batch)?;
    clean &= outputs.len() == batch.len();
    for (out, input) in outputs.iter().zip(&batch) {
        clean &= *out == testnet::tiny_mlp_reference(&weights, input);
    }
    // Tampered last — an accepted injection would desync the session, a
    // rejected one burns it either way.
    let mut wire = user.encrypt_tensor(&[5; 8])?;
    wire[0] ^= 0x01;
    let tampered = match server.inject_sealed_input(sid, wire) {
        Err(e) => Outcome::Detected(e.name()),
        Ok(_) => Outcome::Clean,
    };
    Ok(ScenarioResult { tampered, clean })
}

/// LRU-eviction churn: fill the device's on-chip table, let the
/// (MAX_SESSIONS + 1)-th establish evict the least-recently-used idle
/// session, re-establish the evictee and run a bit-exact inference —
/// then flip a weight bit in its freshly reloaded model and re-infer.
pub(super) fn lru_churn(scheme: Scheme, cfg: &ChaosConfig) -> Result<ScenarioResult, GuardNnError> {
    let integrity = integrity_of(scheme);
    let net = testnet::tiny_mlp();
    let weights = testnet::tiny_mlp_weights(WEIGHT_SEED);
    let (device, maker_pk) = GuardNnDevice::provision(cfg.seed ^ 0x10B0, cfg.seed ^ 0x3C);
    let mut server = DeviceServer::new(device);
    let mut users = Vec::with_capacity(MAX_SESSIONS);
    let mut sids = Vec::with_capacity(MAX_SESSIONS);
    for i in 0..MAX_SESSIONS {
        let mut user = RemoteUser::new(maker_pk.clone(), cfg.seed.wrapping_add(i as u64 * 7 + 5));
        let sid = server.connect(&mut user)?;
        server.establish(sid, &mut user, integrity)?;
        users.push(user);
        sids.push(sid);
    }
    // The table is full: the newcomer's establish must evict session 0
    // (least recently stepped, idle) back to Provisioned.
    let mut newcomer = RemoteUser::new(maker_pk, cfg.seed ^ 0x9999);
    let nsid = server.connect(&mut newcomer)?;
    server.establish(nsid, &mut newcomer, integrity)?;
    let mut clean = server.session_state(sids[0]) == Some(SessionState::Provisioned);

    // The evictee re-keys onto the (again full) table and serves bit-exact.
    server.establish(sids[0], &mut users[0], integrity)?;
    server.load_model(sids[0], &mut users[0], &net, &weights)?;
    let input = base_input(cfg.seed);
    let reference = testnet::tiny_mlp_reference(&weights, &input);
    clean &= server.infer(sids[0], &mut users[0], &input)? == reference;

    // Tamper the re-imported weights behind the device's back.
    let addr = server.device_mut().weight_region(0)?;
    server.device_mut().physical_dram_mut()?.tamper(addr, 0x01);
    let tampered = match server.infer(sids[0], &mut users[0], &input) {
        Err(e @ GuardNnError::IntegrityViolation { .. }) => Outcome::Detected(e.name()),
        Err(e) => return Err(e),
        Ok(out) if out == reference => Outcome::Clean,
        Ok(_) => Outcome::Garbled,
    };
    Ok(ScenarioResult { tampered, clean })
}

// ---------------------------------------------------------------------------
// Counter exhaustion.
// ---------------------------------------------------------------------------

/// Counter exhaustion at the u32 boundary: with `CTR_IN` parked at
/// `u32::MAX`, the next sealed input must be refused *before* a version
/// number reuse — and a fresh key exchange on the same slot must restore
/// bit-exact service.
pub(super) fn ctr_exhaust(
    scheme: Scheme,
    cfg: &ChaosConfig,
) -> Result<ScenarioResult, GuardNnError> {
    let mut r = rig(scheme, cfg)?;
    let input = base_input(cfg.seed);
    let reference = testnet::tiny_mlp_reference(&r.weights, &input);
    let (out, _) = r.host.infer(&mut r.device, &mut r.user, &r.net, &input)?;
    let mut clean = out == reference;

    park_counters(&mut r.device, u32::MAX, 0, 0)?;
    let message = r.user.encrypt_tensor(&input)?;
    let tampered = match r.device.execute(Instruction::SetInput { message }) {
        Err(e) => Outcome::Detected(e.name()),
        Ok(_) => Outcome::Clean,
    };

    // Recovery: re-key (the host closes its old slot first), then the
    // same user infers bit-exact again under the fresh counters.
    r.host.establish(
        &mut r.device,
        &mut r.user,
        &r.net,
        &r.weights,
        integrity_of(scheme),
    )?;
    let (out, _) = r.host.infer(&mut r.device, &mut r.user, &r.net, &input)?;
    clean &= out == reference;
    Ok(ScenarioResult { tampered, clean })
}

// ---------------------------------------------------------------------------
// Fleet families: device failover over a FleetSupervisor.
// ---------------------------------------------------------------------------

/// A fleet of `devices` servers provisioned by one manufacturer, plus a
/// user pinning that manufacturer's key (so one user can verify every
/// device's certificate across migrations).
fn fleet_rig(
    cfg: &ChaosConfig,
    devices: usize,
    budget: usize,
) -> (FleetSupervisor, RemoteUser, VerifyingKey) {
    let maker_seed = cfg.seed ^ 0xF1EE7;
    let mut fleet_devices = Vec::new();
    let mut maker = None;
    for i in 0..devices {
        let (d, pk) = GuardNnDevice::provision(0x10 + i as u64, maker_seed);
        maker = Some(pk);
        fleet_devices.push(d);
    }
    let maker = maker.expect("at least one device");
    let user = RemoteUser::new(maker.clone(), cfg.seed ^ 0x5EED);
    let policy = FleetPolicy {
        per_device_budget: budget,
        ..FleetPolicy::default()
    };
    (FleetSupervisor::new(fleet_devices, policy), user, maker)
}

/// Runs one batch through the fleet and reports whether every output is
/// bit-exact against the unprotected reference.
fn fleet_batch_exact(
    fleet: &mut FleetSupervisor,
    sid: FleetSessionId,
    user: &mut RemoteUser,
    weights: &[Vec<i32>],
    cfg: &ChaosConfig,
) -> Result<bool, GuardNnError> {
    let len = cfg.stream_len.max(2);
    let inputs: Vec<Vec<i32>> = (0..len)
        .map(|k| base_input(cfg.seed.wrapping_add(k as u64)))
        .collect();
    let outputs = fleet.infer_batch(sid, user, &inputs)?;
    Ok(outputs.len() == inputs.len()
        && inputs
            .iter()
            .zip(&outputs)
            .all(|(i, o)| *o == testnet::tiny_mlp_reference(weights, i)))
}

/// Device crash mid-batch: the session must migrate to the healthy
/// device (fresh key exchange, one weight re-import) and finish the
/// batch bit-exact. The tampered observation is the dead device's typed
/// probe error.
pub(super) fn fleet_crash_migrate(
    scheme: Scheme,
    cfg: &ChaosConfig,
) -> Result<ScenarioResult, GuardNnError> {
    let (mut fleet, mut user, _) = fleet_rig(cfg, 2, FleetPolicy::default().per_device_budget);
    // Ops 0..2 are connect/establish/load, 3.. begin the batch; op 12 is
    // well inside the first job's instruction stream.
    fleet.set_fault_plan(DeviceId(0), DeviceFaultPlan::crash_at(12))?;
    let net = testnet::tiny_mlp();
    let weights = testnet::tiny_mlp_weights(WEIGHT_SEED);
    let sid = fleet.connect()?;
    fleet.establish(sid, &mut user, integrity_of(scheme))?;
    fleet.load_model(sid, &mut user, &net, &weights)?;
    let mut clean = fleet_batch_exact(&mut fleet, sid, &mut user, &weights, cfg)?;
    clean &= fleet.session_migrations(sid) == Some(1);
    clean &= fleet.session_device(sid) == Some(DeviceId(1));
    let tampered = match fleet.probe(DeviceId(0)) {
        Err(e) => Outcome::Detected(e.name()),
        Ok(()) => Outcome::Clean,
    };
    Ok(ScenarioResult { tampered, clean })
}

/// Device crash during the key exchange: `establish` must fail over to
/// the healthy device transparently — a clean re-establish, no typed
/// error surfacing to the session.
pub(super) fn fleet_keyx_crash(
    scheme: Scheme,
    cfg: &ChaosConfig,
) -> Result<ScenarioResult, GuardNnError> {
    let (mut fleet, mut user, _) = fleet_rig(cfg, 2, FleetPolicy::default().per_device_budget);
    // Op 0 is the certificate fetch, op 1 the key exchange itself.
    fleet.set_fault_plan(DeviceId(0), DeviceFaultPlan::crash_at(1))?;
    let net = testnet::tiny_mlp();
    let weights = testnet::tiny_mlp_weights(WEIGHT_SEED);
    let sid = fleet.connect()?;
    fleet.establish(sid, &mut user, integrity_of(scheme))?;
    let mut clean = fleet.session_device(sid) == Some(DeviceId(1));
    fleet.load_model(sid, &mut user, &net, &weights)?;
    clean &= fleet_batch_exact(&mut fleet, sid, &mut user, &weights, cfg)?;
    let tampered = match fleet.probe(DeviceId(0)) {
        Err(e) => Outcome::Detected(e.name()),
        Ok(()) => Outcome::Clean,
    };
    Ok(ScenarioResult { tampered, clean })
}

/// Admission control: a one-device, one-session fleet must shed the
/// second session with the typed overload rejection — and admit it
/// cleanly (bit-exact service) once the first session disconnects.
pub(super) fn fleet_overload(
    scheme: Scheme,
    cfg: &ChaosConfig,
) -> Result<ScenarioResult, GuardNnError> {
    let (mut fleet, mut user_a, maker) = fleet_rig(cfg, 1, 1);
    let net = testnet::tiny_mlp();
    let weights = testnet::tiny_mlp_weights(WEIGHT_SEED);
    let sid_a = fleet.connect()?;
    fleet.establish(sid_a, &mut user_a, integrity_of(scheme))?;
    fleet.load_model(sid_a, &mut user_a, &net, &weights)?;
    let mut clean = fleet_batch_exact(&mut fleet, sid_a, &mut user_a, &weights, cfg)?;

    // The fleet is at capacity: the next admission must shed, typed.
    let tampered = match fleet.connect() {
        Err(e) => Outcome::Detected(e.name()),
        Ok(_) => Outcome::Clean,
    };

    // Shedding is not a wedge: once the slot frees, a second user is
    // admitted and served bit-exact.
    fleet.disconnect(sid_a)?;
    let mut user_b = RemoteUser::new(maker, cfg.seed ^ 0xB0B);
    let sid_b = fleet.connect()?;
    fleet.establish(sid_b, &mut user_b, integrity_of(scheme))?;
    fleet.load_model(sid_b, &mut user_b, &net, &weights)?;
    clean &= fleet_batch_exact(&mut fleet, sid_b, &mut user_b, &weights, cfg)?;
    Ok(ScenarioResult { tampered, clean })
}
