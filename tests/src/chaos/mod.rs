//! The chaos-matrix security harness: scripted adversaries across the
//! full (scheme × channel-mode × parallelism) grid.
//!
//! The paper's security argument is only as strong as its weakest
//! configuration, so this harness runs every scripted adversary in every
//! cell of the evaluation grid and holds each cell to the same two-sided
//! contract:
//!
//! * **Every tampered run is detected** — and not just detected, but
//!   refused with the *expected* typed [`guardnn::GuardNnError`] variant
//!   (channel faults trip `ChannelAuth`, DRAM faults under integrity trip
//!   `IntegrityViolation`, counter pressure trips `CounterExhausted`).
//!   Confidentiality-only schemes may compute through a DRAM tamper, but
//!   the result must be visibly garbled — never the honest plaintext.
//! * **Every clean run is bit-identical to its oracle** — the functional
//!   twin of each scenario must match the reference network output, and
//!   the performance pipeline (cycles, traffic, row statistics, execution
//!   time) must match the materialized differential oracle bit for bit in
//!   every channel mode and worker policy.
//!
//! The grid has three axes: the four protection [`Scheme`]s, the DRAM
//! [`ChannelMode`] (inline vs one worker thread per channel), and the
//! job-level [`Parallelism`] policy. Functional scenarios do not touch
//! the DRAM timing model, so their outcomes must be *invariant* across
//! combos — [`run_matrix`] asserts exactly that, which is how thread
//! scheduling is pinned out of the security story.
//!
//! Scenario families live in data ([`all_scenarios`]): each is a name, a
//! `run` function mounting the tampered attack plus its clean twin, and
//! an `expect` function mapping a scheme to the required [`Outcome`]. To
//! add a family, write the two functions and push a [`Scenario`] — the
//! matrix driver, the CI slice, and the `chaos` bench binary pick it up
//! unchanged.

mod scenarios;

use std::collections::BTreeMap;
use std::fmt;

use guardnn::device::MAX_SESSIONS;
use guardnn::perf::{
    evaluate_all_parallel, evaluate_into, evaluate_materialized, EvalConfig, Mode, Parallelism,
    Scheme,
};
use guardnn::GuardNnError;
use guardnn_dram::{with_channel_workers, ChannelMode, DramSystem, StreamFault, TamperingSink};
use guardnn_memprot::harness::RunSummary;
use guardnn_models::layer::{conv, fc};
use guardnn_models::Network;

/// The functional-world integrity setting a perf scheme maps to. The
/// functional device always encrypts (there is no functional plaintext
/// mode), so `NoProtection` and `GuardNN_C` run confidentiality-only
/// sessions while `GuardNN_CI` and the MEE baseline verify integrity.
pub fn integrity_of(scheme: Scheme) -> bool {
    matches!(scheme, Scheme::GuardNnCi | Scheme::Baseline)
}

/// What a tampered (or clean) run was observed to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The device refused with this [`guardnn::GuardNnError`] variant
    /// (by [`guardnn::GuardNnError::name`]).
    Detected(&'static str),
    /// The device computed through the tamper and produced output that
    /// differs from the honest reference (confidentiality-only schemes).
    Garbled,
    /// The run behaved as if untampered — a *failure* for any tampered
    /// cell.
    Clean,
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Detected(name) => write!(f, "detected:{name}"),
            Outcome::Garbled => write!(f, "garbled"),
            Outcome::Clean => write!(f, "clean"),
        }
    }
}

/// What one scenario cell observed: the tampered run's [`Outcome`] and
/// whether the clean twin of the same cell matched its reference oracle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScenarioResult {
    /// Outcome of the tampered run.
    pub tampered: Outcome,
    /// Whether the untampered twin matched the reference bit for bit.
    pub clean: bool,
}

/// Scenario knobs shared by every family.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Base seed for deterministic inputs and fault positions.
    pub seed: u64,
    /// Sessions in the preemption storm (clamped to the device table).
    pub sessions: usize,
    /// Sealed messages per host-fault stream (min 2).
    pub stream_len: usize,
}

/// One scenario family: a named adversary script plus its per-scheme
/// expectation.
#[derive(Clone, Copy)]
pub struct Scenario {
    /// Family name (stable, used in reports and cross-combo keys).
    pub name: &'static str,
    /// Mounts the tampered attack and its clean twin for one scheme.
    pub run: fn(Scheme, &ChaosConfig) -> Result<ScenarioResult, GuardNnError>,
    /// The outcome the tampered run must produce under a scheme.
    pub expect: fn(Scheme) -> Outcome,
}

impl fmt::Debug for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scenario")
            .field("name", &self.name)
            .finish()
    }
}

fn expect_channel_auth(_: Scheme) -> Outcome {
    // The secure channel's MAC and strict sequence numbers are on for
    // every scheme — relay faults are always typed ChannelAuth.
    Outcome::Detected("ChannelAuth")
}

fn expect_integrity_or_garble(scheme: Scheme) -> Outcome {
    if integrity_of(scheme) {
        Outcome::Detected("IntegrityViolation")
    } else {
        Outcome::Garbled
    }
}

fn expect_counter_exhausted(_: Scheme) -> Outcome {
    Outcome::Detected("CounterExhausted")
}

fn expect_device_lost(_: Scheme) -> Outcome {
    // A dead fleet device probes as the typed DeviceLost error for
    // every scheme; the session itself recovers via migration.
    Outcome::Detected("DeviceLost")
}

fn expect_fleet_overloaded(_: Scheme) -> Outcome {
    Outcome::Detected("FleetOverloaded")
}

/// Every scenario family, in reporting order.
pub fn all_scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "host-drop",
            run: scenarios::host_drop,
            expect: expect_channel_auth,
        },
        Scenario {
            name: "host-replay",
            run: scenarios::host_replay,
            expect: expect_channel_auth,
        },
        Scenario {
            name: "host-reorder",
            run: scenarios::host_reorder,
            expect: expect_channel_auth,
        },
        Scenario {
            name: "host-corrupt",
            run: scenarios::host_corrupt,
            expect: expect_channel_auth,
        },
        Scenario {
            name: "dram-bitflip",
            run: scenarios::dram_bitflip,
            expect: expect_integrity_or_garble,
        },
        Scenario {
            name: "dram-stale-replay",
            run: scenarios::dram_stale_replay,
            expect: expect_integrity_or_garble,
        },
        Scenario {
            name: "preempt-storm",
            run: scenarios::preempt_storm,
            expect: expect_integrity_or_garble,
        },
        Scenario {
            name: "cancel-churn",
            run: scenarios::cancel_churn,
            expect: expect_channel_auth,
        },
        Scenario {
            name: "lru-churn",
            run: scenarios::lru_churn,
            expect: expect_integrity_or_garble,
        },
        Scenario {
            name: "ctr-exhaust",
            run: scenarios::ctr_exhaust,
            expect: expect_counter_exhausted,
        },
        Scenario {
            name: "fleet-crash-migrate",
            run: scenarios::fleet_crash_migrate,
            expect: expect_device_lost,
        },
        Scenario {
            name: "fleet-keyx-crash",
            run: scenarios::fleet_keyx_crash,
            expect: expect_device_lost,
        },
        Scenario {
            name: "fleet-overload",
            run: scenarios::fleet_overload,
            expect: expect_fleet_overloaded,
        },
    ]
}

/// One cell of the (channel-mode × parallelism) plane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Combo {
    /// How each DRAM simulation drives its channels.
    pub channel_mode: ChannelMode,
    /// Worker policy for fanning scenario/evaluation jobs out.
    pub parallelism: Parallelism,
}

impl Combo {
    /// Stable display label, e.g. `inline/serial` or `threaded/threads4`.
    pub fn label(&self) -> String {
        let cm = match self.channel_mode {
            ChannelMode::Serial => "inline",
            ChannelMode::Threaded => "threaded",
        };
        let par = match self.parallelism {
            Parallelism::Serial => "serial".to_string(),
            Parallelism::Auto => "auto".to_string(),
            Parallelism::Threads(n) => format!("threads{n}"),
        };
        format!("{cm}/{par}")
    }

    /// The full 2×2 combo plane.
    pub fn grid() -> Vec<Combo> {
        let mut combos = Vec::new();
        for channel_mode in [ChannelMode::Serial, ChannelMode::Threaded] {
            for parallelism in [Parallelism::Serial, Parallelism::Threads(4)] {
                combos.push(Combo {
                    channel_mode,
                    parallelism,
                });
            }
        }
        combos
    }
}

/// Configuration of one matrix run.
#[derive(Clone, Debug)]
pub struct MatrixConfig {
    /// Protection schemes to cover.
    pub schemes: Vec<Scheme>,
    /// (channel-mode × parallelism) cells to cover.
    pub combos: Vec<Combo>,
    /// Scenario families to mount in every cell.
    pub scenarios: Vec<Scenario>,
    /// Shared scenario knobs.
    pub chaos: ChaosConfig,
    /// Network driven through the performance pipeline.
    pub perf_network: Network,
    /// Scripted fault for the tampered performance runs.
    pub perf_fault: StreamFault,
}

/// The small convolutional network the performance phases simulate —
/// big enough for real DRAM traffic, small enough for the CI budget.
fn perf_network() -> Network {
    Network::new(
        "chaos-perf",
        vec![conv("c1", 8, 3, 4, 3, 1, 1), fc("f1", 1, 4 * 8 * 8, 10)],
    )
}

/// A mid-stream address-line fault well inside every scheme's request
/// stream for [`perf_network`].
fn perf_fault() -> StreamFault {
    StreamFault::AddrFlip {
        at: 40,
        count: 16,
        xor: 1 << 20,
    }
}

impl MatrixConfig {
    /// The full matrix: all four schemes × the 2×2 combo plane × every
    /// scenario family, with a full-table preemption storm. This is the
    /// manual `chaos` bench binary's default — minutes, not seconds.
    pub fn full() -> Self {
        Self {
            schemes: Scheme::all().to_vec(),
            combos: Combo::grid(),
            scenarios: all_scenarios(),
            chaos: ChaosConfig {
                seed: 0xC4A0,
                sessions: MAX_SESSIONS,
                stream_len: 6,
            },
            perf_network: perf_network(),
            perf_fault: perf_fault(),
        }
    }

    /// The CI slice: every scenario family, all four schemes, but only
    /// two combos and a small preemption storm — the fixed subset the
    /// smoke job runs on every push.
    pub fn ci_slice() -> Self {
        Self {
            schemes: Scheme::all().to_vec(),
            combos: vec![
                Combo {
                    channel_mode: ChannelMode::Serial,
                    parallelism: Parallelism::Serial,
                },
                Combo {
                    channel_mode: ChannelMode::Threaded,
                    parallelism: Parallelism::Threads(2),
                },
            ],
            scenarios: all_scenarios(),
            chaos: ChaosConfig {
                seed: 0xC4A0,
                sessions: 6,
                stream_len: 4,
            },
            perf_network: perf_network(),
            perf_fault: perf_fault(),
        }
    }
}

/// One functional cell's verdict.
#[derive(Clone, Debug)]
pub struct CellReport {
    /// Combo label the cell ran under.
    pub combo: String,
    /// Scenario family name.
    pub scenario: &'static str,
    /// Protection scheme.
    pub scheme: Scheme,
    /// Outcome the tampered run was required to produce.
    pub expected: Outcome,
    /// Outcome the tampered run actually produced (`None` when the
    /// scenario itself failed to run).
    pub observed: Option<Outcome>,
    /// Whether the clean twin matched its reference oracle.
    pub clean_ok: bool,
    /// Infrastructure error that aborted the scenario, if any.
    pub error: Option<String>,
}

impl CellReport {
    /// Whether this cell met the contract.
    pub fn pass(&self) -> bool {
        self.error.is_none() && self.observed == Some(self.expected) && self.clean_ok
    }

    fn observed_str(&self) -> String {
        match (&self.observed, &self.error) {
            (Some(o), _) => o.to_string(),
            (None, Some(e)) => format!("error:{e}"),
            (None, None) => "-".to_string(),
        }
    }
}

/// One performance cell's verdict: clean bit-identity against the
/// materialized oracle, plus tampered-sink observability and determinism.
#[derive(Clone, Debug)]
pub struct PerfReport {
    /// Combo label the cell ran under.
    pub combo: String,
    /// Protection scheme.
    pub scheme: Scheme,
    /// Clean streamed run is bit-identical to the materialized oracle.
    pub clean_bit_identical: bool,
    /// The scripted DRAM fault actually struck the stream.
    pub tamper_fired: bool,
    /// Two tampered runs are bit-identical to each other.
    pub tamper_deterministic: bool,
    /// The tampered run's statistics differ from the clean run's.
    pub tamper_observable: bool,
}

impl PerfReport {
    /// Whether this cell met the contract.
    pub fn pass(&self) -> bool {
        self.clean_bit_identical
            && self.tamper_fired
            && self.tamper_deterministic
            && self.tamper_observable
    }
}

/// Full matrix verdict: every functional and performance cell, plus any
/// cross-combo invariance violations.
#[derive(Clone, Debug)]
pub struct MatrixReport {
    /// Functional cells (scenario × scheme × combo).
    pub cells: Vec<CellReport>,
    /// Performance cells (scheme × combo).
    pub perf: Vec<PerfReport>,
    /// (scenario, scheme) pairs whose outcome differed across combos.
    pub invariance_failures: Vec<String>,
}

impl MatrixReport {
    /// Whether every cell passed and outcomes were combo-invariant.
    pub fn passed(&self) -> bool {
        self.cells.iter().all(CellReport::pass)
            && self.perf.iter().all(PerfReport::pass)
            && self.invariance_failures.is_empty()
    }

    /// Human-readable description of every failing cell.
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        for c in self.cells.iter().filter(|c| !c.pass()) {
            out.push(format!(
                "[{}] {} × {}: expected {}, observed {}, clean twin {}",
                c.combo,
                c.scenario,
                c.scheme.label(),
                c.expected,
                c.observed_str(),
                if c.clean_ok { "ok" } else { "DIVERGED" },
            ));
        }
        for p in self.perf.iter().filter(|p| !p.pass()) {
            out.push(format!(
                "[{}] perf × {}: clean-identical={}, fired={}, deterministic={}, observable={}",
                p.combo,
                p.scheme.label(),
                p.clean_bit_identical,
                p.tamper_fired,
                p.tamper_deterministic,
                p.tamper_observable,
            ));
        }
        out.extend(self.invariance_failures.iter().cloned());
        out
    }

    /// Renders the whole matrix as aligned text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut rows = vec![vec![
            "combo".to_string(),
            "scenario".to_string(),
            "scheme".to_string(),
            "expected".to_string(),
            "observed".to_string(),
            "clean".to_string(),
            "verdict".to_string(),
        ]];
        for c in &self.cells {
            rows.push(vec![
                c.combo.clone(),
                c.scenario.to_string(),
                c.scheme.label().to_string(),
                c.expected.to_string(),
                c.observed_str(),
                if c.clean_ok { "ok" } else { "DIVERGED" }.to_string(),
                if c.pass() { "pass" } else { "FAIL" }.to_string(),
            ]);
        }
        out.push_str("Functional cells (tampered outcome + clean twin):\n");
        out.push_str(&aligned(&rows));

        let mut rows = vec![vec![
            "combo".to_string(),
            "scheme".to_string(),
            "clean=oracle".to_string(),
            "fired".to_string(),
            "deterministic".to_string(),
            "observable".to_string(),
            "verdict".to_string(),
        ]];
        for p in &self.perf {
            rows.push(vec![
                p.combo.clone(),
                p.scheme.label().to_string(),
                yn(p.clean_bit_identical),
                yn(p.tamper_fired),
                yn(p.tamper_deterministic),
                yn(p.tamper_observable),
                if p.pass() { "pass" } else { "FAIL" }.to_string(),
            ]);
        }
        out.push_str("\nPerformance cells (bit-identity + tampering sink):\n");
        out.push_str(&aligned(&rows));

        if self.invariance_failures.is_empty() {
            out.push_str("\nCross-combo invariance: ok\n");
        } else {
            out.push_str("\nCross-combo invariance FAILURES:\n");
            for f in &self.invariance_failures {
                out.push_str(&format!("  {f}\n"));
            }
        }
        let fc = self.cells.iter().filter(|c| c.pass()).count();
        let pc = self.perf.iter().filter(|p| p.pass()).count();
        out.push_str(&format!(
            "\n{fc}/{} functional cells pass, {pc}/{} performance cells pass\n",
            self.cells.len(),
            self.perf.len(),
        ));
        out
    }
}

fn yn(b: bool) -> String {
    if b { "yes" } else { "NO" }.to_string()
}

fn aligned(rows: &[Vec<String>]) -> String {
    let cols = rows.first().map_or(0, Vec::len);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    for row in rows {
        out.push_str("  ");
        for (cell, w) in row.iter().zip(&widths) {
            out.push_str(&format!("{cell:<w$}  "));
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
    out
}

/// Field-wise bit identity of two run summaries — the same definition the
/// streaming differential suite pins, deliberately excluding
/// `trace_buffer_bytes` (the streaming and materialized drivers buffer
/// different amounts by design).
pub fn bit_identical(a: &RunSummary, b: &RunSummary) -> bool {
    a.scheme == b.scheme
        && a.data_bytes == b.data_bytes
        && a.meta_bytes == b.meta_bytes
        && a.dram == b.dram
        && a.compute_cycles == b.compute_cycles
        && a.exec_ns.to_bits() == b.exec_ns.to_bits()
}

/// Runs one tampered performance simulation under a combo's channel mode,
/// returning the summary and whether the fault struck.
fn tampered_run(
    network: &Network,
    scheme: Scheme,
    combo: Combo,
    fault: StreamFault,
    eval_cfg: &EvalConfig,
) -> (RunSummary, bool) {
    match combo.channel_mode {
        ChannelMode::Serial => {
            let mut sink = TamperingSink::new(DramSystem::new(eval_cfg.dram), fault);
            let summary = evaluate_into(network, Mode::Inference, scheme, eval_cfg, &mut sink);
            let fired = sink.fired();
            (summary, fired)
        }
        ChannelMode::Threaded => with_channel_workers(eval_cfg.dram, |front| {
            let mut sink = TamperingSink::new(front, fault);
            let summary = evaluate_into(network, Mode::Inference, scheme, eval_cfg, &mut sink);
            let fired = sink.fired();
            (summary, fired)
        }),
    }
}

/// The performance phase of one combo: clean bit-identity against the
/// materialized oracle for every scheme, plus tampering-sink determinism
/// and observability.
fn perf_phase(cfg: &MatrixConfig, combo: Combo) -> Vec<PerfReport> {
    let eval_cfg = EvalConfig {
        parallelism: combo.parallelism,
        channel_mode: combo.channel_mode,
        ..EvalConfig::default()
    };
    let streamed = evaluate_all_parallel(&cfg.perf_network, Mode::Inference, &eval_cfg);
    streamed
        .iter()
        .filter(|(scheme, _)| cfg.schemes.contains(scheme))
        .map(|(scheme, clean)| {
            let oracle =
                evaluate_materialized(&cfg.perf_network, Mode::Inference, *scheme, &eval_cfg);
            let (t1, fired) =
                tampered_run(&cfg.perf_network, *scheme, combo, cfg.perf_fault, &eval_cfg);
            let (t2, _) =
                tampered_run(&cfg.perf_network, *scheme, combo, cfg.perf_fault, &eval_cfg);
            PerfReport {
                combo: combo.label(),
                scheme: *scheme,
                clean_bit_identical: bit_identical(clean, &oracle),
                tamper_fired: fired,
                tamper_deterministic: bit_identical(&t1, &t2),
                tamper_observable: !bit_identical(&t1, clean),
            }
        })
        .collect()
}

/// Runs the full chaos matrix described by `cfg`: every scenario family ×
/// scheme fanned across each combo's worker pool, then the performance
/// bit-identity and tampering-sink phases, then the cross-combo
/// invariance check.
pub fn run_matrix(cfg: &MatrixConfig) -> MatrixReport {
    let mut cells = Vec::new();
    let mut perf = Vec::new();
    for combo in &cfg.combos {
        let jobs: Vec<(usize, Scheme)> = (0..cfg.scenarios.len())
            .flat_map(|si| cfg.schemes.iter().map(move |s| (si, *s)))
            .collect();
        let results = combo.parallelism.run(jobs.len(), |i| {
            (cfg.scenarios[jobs[i].0].run)(jobs[i].1, &cfg.chaos)
        });
        for ((si, scheme), result) in jobs.into_iter().zip(results) {
            let scenario = &cfg.scenarios[si];
            let (observed, clean_ok, error) = match result {
                Ok(r) => (Some(r.tampered), r.clean, None),
                Err(e) => (None, false, Some(e.to_string())),
            };
            cells.push(CellReport {
                combo: combo.label(),
                scenario: scenario.name,
                scheme,
                expected: (scenario.expect)(scheme),
                observed,
                clean_ok,
                error,
            });
        }
        perf.extend(perf_phase(cfg, *combo));
    }

    // Functional outcomes must not depend on the combo: thread scheduling
    // and channel workers are performance knobs, not security knobs.
    let mut by_key: BTreeMap<(&'static str, &'static str), Vec<(String, String)>> = BTreeMap::new();
    for cell in &cells {
        by_key
            .entry((cell.scenario, cell.scheme.label()))
            .or_default()
            .push((cell.combo.clone(), cell.observed_str()));
    }
    let invariance_failures = by_key
        .into_iter()
        .filter(|(_, entries)| entries.iter().any(|(_, o)| *o != entries[0].1))
        .map(|((scenario, scheme), entries)| {
            format!("{scenario} × {scheme}: outcome differs across combos: {entries:?}")
        })
        .collect();

    MatrixReport {
        cells,
        perf,
        invariance_failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combo_labels_are_stable() {
        let grid = Combo::grid();
        assert_eq!(grid.len(), 4);
        let labels: Vec<String> = grid.iter().map(Combo::label).collect();
        assert_eq!(
            labels,
            vec![
                "inline/serial",
                "inline/threads4",
                "threaded/serial",
                "threaded/threads4"
            ]
        );
    }

    #[test]
    fn scenario_families_cover_the_issue_floor() {
        assert!(all_scenarios().len() >= 6, "need at least 6 families");
    }

    #[test]
    fn expectations_follow_the_scheme_split() {
        for s in Scheme::all() {
            assert_eq!(expect_channel_auth(s), Outcome::Detected("ChannelAuth"));
            assert_eq!(
                expect_counter_exhausted(s),
                Outcome::Detected("CounterExhausted")
            );
            assert_eq!(expect_device_lost(s), Outcome::Detected("DeviceLost"));
            assert_eq!(
                expect_fleet_overloaded(s),
                Outcome::Detected("FleetOverloaded")
            );
            let e = expect_integrity_or_garble(s);
            if integrity_of(s) {
                assert_eq!(e, Outcome::Detected("IntegrityViolation"));
            } else {
                assert_eq!(e, Outcome::Garbled);
            }
        }
    }
}
