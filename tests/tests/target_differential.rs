//! Differential pinning for the hardware target registry: the
//! `guardnn-paper` target must reproduce the pre-registry hard-coded
//! defaults **bit-for-bit**. `EvalConfig::for_target("guardnn-paper")`
//! and `EvalConfig::default()` are run across all four protection schemes
//! on two networks, streaming and materialized, and every summary field —
//! cycles, traffic bytes, DRAM row statistics, even the `exec_ns` float
//! bits — must be identical. If a registry edit drifts the paper point,
//! this suite is the tripwire.

use guardnn::perf::{evaluate, evaluate_materialized, EvalConfig, Mode, Scheme};
use guardnn_memprot::harness::RunSummary;
use guardnn_models::zoo;

const ALL_SCHEMES: [Scheme; 4] = [
    Scheme::NoProtection,
    Scheme::GuardNnC,
    Scheme::GuardNnCi,
    Scheme::Baseline,
];

fn assert_bit_identical(a: &RunSummary, b: &RunSummary, what: &str) {
    assert_eq!(a.scheme, b.scheme, "{what}");
    assert_eq!(a.data_bytes, b.data_bytes, "{what}: data bytes");
    assert_eq!(a.meta_bytes, b.meta_bytes, "{what}: meta bytes");
    assert_eq!(a.dram, b.dram, "{what}: DRAM stats (cycles, row buffer)");
    assert_eq!(a.compute_cycles, b.compute_cycles, "{what}: compute");
    assert_eq!(
        a.exec_ns.to_bits(),
        b.exec_ns.to_bits(),
        "{what}: exec_ns bits"
    );
    assert_eq!(
        a.trace_buffer_bytes, b.trace_buffer_bytes,
        "{what}: trace buffer"
    );
}

/// The two smallest paper networks — enough to exercise FC-only (dlrm)
/// and depthwise-conv (mobilenet) layouts without blowing the suite's
/// wall-clock budget.
fn networks() -> Vec<guardnn_models::Network> {
    vec![zoo::dlrm(), zoo::mobilenet_v1()]
}

#[test]
fn paper_target_is_bit_identical_to_default_streaming() {
    let from_registry = EvalConfig::for_target("guardnn-paper").expect("registry has paper target");
    let hard_coded = EvalConfig::default();
    for net in networks() {
        // Training multiplies the traffic, and on DLRM the embedding
        // gradients make it by far the most expensive point in the repo
        // (fig3's training table excludes it for the same reason) — so
        // only mobilenet runs the training mode.
        let modes: &[Mode] = if net.name() == "mobilenet" {
            &[Mode::Inference, Mode::Training { batch: 2 }]
        } else {
            &[Mode::Inference]
        };
        for &mode in modes {
            for scheme in ALL_SCHEMES {
                let a = evaluate(&net, mode, scheme, &from_registry);
                let b = evaluate(&net, mode, scheme, &hard_coded);
                assert_bit_identical(
                    &a,
                    &b,
                    &format!("{} {mode:?} {scheme:?} (streaming)", net.name()),
                );
            }
        }
    }
}

#[test]
fn paper_target_is_bit_identical_to_default_materialized() {
    let from_registry = EvalConfig::for_target("guardnn-paper").expect("registry has paper target");
    let hard_coded = EvalConfig::default();
    for net in networks() {
        for scheme in ALL_SCHEMES {
            let a = evaluate_materialized(&net, Mode::Inference, scheme, &from_registry);
            let b = evaluate_materialized(&net, Mode::Inference, scheme, &hard_coded);
            assert_bit_identical(
                &a,
                &b,
                &format!("{} inference {scheme:?} (materialized)", net.name()),
            );
        }
    }
}

/// The config structs themselves must match exactly — a stronger and
/// cheaper check than the behavioural one above, but it cannot replace
/// it: behavioural identity is what the acceptance criterion names.
#[test]
fn paper_target_config_fields_match_default() {
    let t = EvalConfig::for_target("guardnn-paper").unwrap();
    let d = EvalConfig::default();
    assert_eq!(t.array, d.array);
    assert_eq!(t.dram, d.dram);
}

/// Unknown names surface the typed registry error, never a panic.
#[test]
fn unknown_target_is_a_typed_error() {
    let err = EvalConfig::for_target("not-a-target").unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("unknown target") && msg.contains("guardnn-paper"),
        "{msg}"
    );
}

/// Every non-paper registry target must actually *change* the evaluated
/// hardware point — a registry file that silently parses to the default
/// config would make `--all-targets` a no-op.
#[test]
fn other_targets_differ_from_default() {
    let d = EvalConfig::default();
    for t in guardnn_targets::builtin_targets() {
        if t.name == "guardnn-paper" {
            continue;
        }
        let cfg = guardnn::perf::EvalConfig::from_target(t);
        assert!(
            cfg.array != d.array || cfg.dram != d.dram,
            "{} parses to the default hardware point",
            t.name
        );
    }
}
