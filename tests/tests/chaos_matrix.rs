//! The chaos matrix as a test suite: the CI slice runs on every push;
//! the full matrix is `#[ignore]`d here and driven by the
//! `guardnn-bench` `chaos` binary (or `cargo test -- --ignored`).

use guardnn_tests::chaos::{run_matrix, MatrixConfig};

#[test]
fn chaos_ci_slice_passes() {
    let report = run_matrix(&MatrixConfig::ci_slice());
    assert!(
        report.passed(),
        "chaos CI slice failed:\n{}",
        report.render()
    );
}

#[test]
#[ignore = "full matrix: run explicitly or via the bench `chaos` binary"]
fn chaos_full_matrix_passes() {
    let report = run_matrix(&MatrixConfig::full());
    assert!(
        report.passed(),
        "chaos full matrix failed:\n{}",
        report.render()
    );
}
