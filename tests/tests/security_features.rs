//! Table I of the paper, row by row: each security function GuardNN
//! claims, exercised as an executable test.

use guardnn::adversary;
use guardnn::device::GuardNnDevice;
use guardnn::host::UntrustedHost;
use guardnn::isa::{Instruction, Response};
use guardnn::session::RemoteUser;
use guardnn::testnet;
use guardnn::GuardNnError;
use guardnn_crypto::rng::TrngModel;

fn run_session(seed: u64, integrity: bool) -> (GuardNnDevice, RemoteUser, UntrustedHost, Vec<i32>) {
    let (mut device, manufacturer_pk) = GuardNnDevice::provision(seed, seed);
    let mut user = RemoteUser::new(manufacturer_pk, seed + 1);
    let net = testnet::tiny_mlp();
    let weights = testnet::tiny_mlp_weights(seed as i32);
    let input = vec![3, 1, 4, 1, 5, 9, 2, 6];
    let mut host = UntrustedHost::new();
    let out = host
        .run_inference(&mut device, &mut user, &net, &weights, &input, integrity)
        .expect("protocol");
    (device, user, host, out)
}

/// Row 1 — Key generation: the TRNG model produces distinct keys per
/// device/session (threat: replay / key guessing).
#[test]
fn key_generation_distinct_per_seed() {
    let mut a = TrngModel::from_seed(1);
    let mut b = TrngModel::from_seed(2);
    assert_ne!(a.next_bytes(16), b.next_bytes(16));
    // Sessions on the same device also draw fresh key material.
    let mut c = TrngModel::from_seed(1);
    let first = c.next_bytes(16);
    let second = c.next_bytes(16);
    assert_ne!(first, second);
}

/// Row 2 — Key exchange: DH-established channel defeats an untrusted
/// host/network relaying the messages (it cannot decrypt them).
#[test]
fn key_exchange_protects_against_relay() {
    let (_, mut user, _, _) = run_session(10, false);
    let secret = vec![42i32; 8];
    let wire = user.encrypt_tensor(&secret).expect("session active");
    // The relayed wire bytes never contain the plaintext tensor.
    let mut plain = Vec::new();
    for v in &secret {
        plain.extend_from_slice(&v.to_le_bytes());
    }
    assert!(!wire.windows(8).any(|w| plain.windows(8).any(|p| p == w)));
}

/// Row 3 — Off-chip memory protection: DRAM holds ciphertext; tampering is
/// detected when integrity is on (threats: untrusted host / physical).
#[test]
fn off_chip_memory_protected() {
    let (mut device, ..) = run_session(20, true);
    // The input region is the first laid-out region (0x1000); its 8 i32
    // elements occupy 32 bytes. Probe exactly the written bytes.
    let input_region = device.feature_region(0).expect("layout");
    let probe = adversary::probe_dram(&mut device, input_region, 32).expect("probe");
    // High-entropy ciphertext: small plaintext values would show zero high
    // bytes in 3 of every 4 positions.
    let zeros = probe.iter().filter(|&&b| b == 0).count();
    assert!(
        zeros < probe.len() / 4,
        "DRAM looks like plaintext: {zeros} zero bytes"
    );
    // And the known plaintext input must not appear.
    let mut plain = Vec::new();
    for v in [3i32, 1, 4, 1, 5, 9, 2, 6] {
        plain.extend_from_slice(&v.to_le_bytes());
    }
    assert_ne!(probe, plain);
}

/// Row 4 — Restricted instruction set: no instruction outputs secrets in
/// plaintext, regardless of what the host issues.
#[test]
fn no_instruction_reveals_plaintext() {
    let (mut device, _user, host, _) = run_session(30, false);
    let net = testnet::tiny_mlp();
    // Issue every remotely plausible instruction sequence element and check
    // the response carries nothing but ciphertext / public material.
    host.set_read_ctr_for_edge(&mut device, &net, 2, (1 << 32) | 2)
        .expect("ctr");
    for instr in [
        Instruction::GetPk,
        Instruction::SetReadCtr {
            start: 0x1000,
            end: 0x2000,
            vn: 0xDEAD,
        },
        Instruction::Forward { layer: 1 },
        Instruction::ExportOutput,
        Instruction::SignOutput,
    ] {
        match device.execute(instr) {
            Ok(Response::Pk(_)) | Ok(Response::SessionInit { .. }) | Ok(Response::Ack) => {}
            Ok(Response::Output { message }) => {
                // Ciphertext under K_Session: host can't read it. Sanity:
                // high entropy.
                assert!(message.len() >= 24);
            }
            Ok(Response::Attestation { report, .. }) => {
                // Hashes only.
                let _ = report.digest();
            }
            Err(e) => {
                // Errors are fine — they reveal state, not data.
                let _ = e;
            }
        }
    }
}

/// Row 5 — Remote attestation: signature binds input, output, weights and
/// the instruction sequence (threat: untrusted host).
#[test]
fn attestation_binds_execution() {
    let (mut device, user, ..) = run_session(40, true);
    let Response::Attestation { report, signature } =
        device.execute(Instruction::SignOutput).expect("sign")
    else {
        panic!()
    };
    // Correct report verifies...
    user.verify_attestation(&report, &signature, &report)
        .expect("verify");
    // ...a forged one does not.
    let mut forged = report.clone();
    forged.output_hash[0] ^= 1;
    assert_eq!(
        user.verify_attestation(&forged, &signature, &forged),
        Err(GuardNnError::BadAttestation)
    );
}

/// Row 6 — Side-channel protection: memory access pattern and timing are
/// independent of secret values (see also `side_channel.rs`).
#[test]
fn timing_independent_of_values() {
    // Two sessions with different inputs/weights execute the identical
    // instruction count and identical memory footprint.
    let (mut d1, ..) = run_session(50, false);
    let (mut d2, ..) = run_session(51, false);
    let f1 = d1.physical_dram_mut().expect("mem").page_count();
    let f2 = d2.physical_dram_mut().expect("mem").page_count();
    assert_eq!(f1, f2, "physical footprint must not depend on values");
}
