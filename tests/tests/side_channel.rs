//! Side-channel freedom: the paper's claim that a GuardNN accelerator's
//! memory access pattern and timing are independent of secret values
//! (§II-A, §II-B), checked at each modeling layer.

use guardnn::device::GuardNnDevice;
use guardnn::host::UntrustedHost;
use guardnn::perf::{evaluate, EvalConfig, Mode, Scheme};
use guardnn::session::RemoteUser;
use guardnn::testnet;
use guardnn_models::graph::ExecutionPlan;
use guardnn_models::zoo;
use guardnn_systolic::{ArrayConfig, TraceBuilder};

/// The DRAM trace is a function of shapes only: rebuilt traces are
/// bit-identical (there is no code path through which tensor *values*
/// could influence it).
#[test]
fn trace_is_shape_deterministic() {
    let net = zoo::mobilenet_v1();
    let plan = ExecutionPlan::inference(&net);
    let tb = TraceBuilder::new(ArrayConfig::tpu_v1(), &plan);
    let t1 = tb.build(&plan);
    let t2 = tb.build(&plan);
    assert_eq!(t1.events(), t2.events());
    assert_eq!(t1.total_compute_cycles(), t2.total_compute_cycles());
}

/// Simulated execution time is identical across runs (no value input
/// exists; this pins the property against future regressions that might
/// thread data values into timing).
#[test]
fn exec_time_deterministic() {
    let net = zoo::mobilenet_v1();
    let cfg = EvalConfig::default();
    let a = evaluate(&net, Mode::Inference, Scheme::GuardNnCi, &cfg);
    let b = evaluate(&net, Mode::Inference, Scheme::GuardNnCi, &cfg);
    assert_eq!(a.exec_ns, b.exec_ns);
    assert_eq!(a.dram.row_hits, b.dram.row_hits);
}

/// The functional device touches the same DRAM pages and the same number
/// of protected chunks regardless of input and weight values.
#[test]
fn functional_footprint_value_independent() {
    let footprint = |weight_seed: i32, input: Vec<i32>| {
        let (mut device, manufacturer_pk) = GuardNnDevice::provision(1, 1);
        let mut user = RemoteUser::new(manufacturer_pk, 2);
        let net = testnet::tiny_cnn();
        let weights = testnet::deterministic_weights(&net, weight_seed);
        UntrustedHost::new()
            .run_inference(&mut device, &mut user, &net, &weights, &input, true)
            .expect("protocol");
        device.physical_dram_mut().expect("mem").page_count()
    };
    let base = footprint(1, vec![0; 16]);
    assert_eq!(base, footprint(99, vec![7; 16]));
    assert_eq!(base, footprint(-5, (0..16).map(|i| i * 1000).collect()));
}

/// Ciphertexts for different values have the same length — message size
/// leaks nothing beyond the (public) tensor shape.
#[test]
fn ciphertext_length_value_independent() {
    let (mut device, manufacturer_pk) = GuardNnDevice::provision(3, 3);
    let mut user = RemoteUser::new(manufacturer_pk, 4);
    let net = testnet::tiny_mlp();
    let weights = testnet::tiny_mlp_weights(1);
    // Drive the protocol once to establish a session.
    UntrustedHost::new()
        .run_inference(
            &mut device,
            &mut user,
            &net,
            &weights,
            &[1, 2, 3, 4, 5, 6, 7, 8],
            false,
        )
        .expect("protocol");
    let w1 = user.encrypt_tensor(&[0i32; 64]).expect("enc");
    let w2 = user.encrypt_tensor(&[i32::MAX; 64]).expect("enc");
    assert_eq!(w1.len(), w2.len());
}
