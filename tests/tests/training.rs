//! Integration tests for secure training: device-resident gradient descent
//! under memory encryption matches the unprotected reference, including
//! under property-based randomization.

use guardnn::device::GuardNnDevice;
use guardnn::host::UntrustedHost;
use guardnn::isa::Instruction;
use guardnn::session::RemoteUser;
use guardnn::testnet;
use guardnn::GuardNnError;
use proptest::prelude::*;

fn setup(seed: u64, integrity: bool) -> (GuardNnDevice, RemoteUser, UntrustedHost) {
    let (mut device, manufacturer_pk) = GuardNnDevice::provision(seed, seed * 3 + 1);
    let mut user = RemoteUser::new(manufacturer_pk, seed + 1000);
    let net = testnet::tiny_mlp();
    let weights = testnet::tiny_mlp_weights(seed as i32);
    let mut host = UntrustedHost::new();
    host.establish(&mut device, &mut user, &net, &weights, integrity)
        .expect("establish");
    (device, user, host)
}

#[test]
fn loss_decreases_over_steps() {
    let (mut device, mut user, mut host) = setup(1, true);
    let net = testnet::tiny_mlp();
    let input = vec![1, 0, 1, 1, 0, 1, 0, 1];
    let target = vec![25, -25];
    let mut losses = Vec::new();
    for _ in 0..4 {
        let (y, _) = host
            .infer(&mut device, &mut user, &net, &input)
            .expect("infer");
        let d: Vec<i32> = y.iter().zip(&target).map(|(a, b)| a - b).collect();
        losses.push(d.iter().map(|&v| (v as i64).pow(2)).sum::<i64>());
        host.train_step(&mut device, &mut user, &net, &input, &d, 7)
            .expect("train");
    }
    assert!(
        losses.last().expect("nonempty") < losses.first().expect("nonempty"),
        "losses {losses:?}"
    );
}

#[test]
fn backward_before_set_output_grad_fails_integrity() {
    // Without SetOutputGrad, the gradient region was never written: with
    // integrity enabled the missing MAC is detected.
    let (mut device, mut user, mut host) = setup(2, true);
    let net = testnet::tiny_mlp();
    host.infer(&mut device, &mut user, &net, &[1, 1, 1, 1, 1, 1, 1, 1])
        .expect("infer");
    host.set_read_ctr_for_edge(&mut device, &net, 1, (1 << 32) | 1)
        .expect("ctr");
    host.set_read_ctr_for_grad_edge(&mut device, &net, 2, (1 << 32) | 9)
        .expect("ctr");
    let err = device
        .execute(Instruction::Backward { layer: 1 })
        .unwrap_err();
    assert!(
        matches!(err, GuardNnError::IntegrityViolation { .. }),
        "got {err:?}"
    );
}

#[test]
fn update_weight_needs_weights() {
    let (mut device, mut user, mut host) = setup(3, false);
    let net = testnet::tiny_cnn();
    let weights = testnet::deterministic_weights(&net, 1);
    host.establish(&mut device, &mut user, &net, &weights, false)
        .expect("re-establish");
    // Layer 1 is the pool (no weights).
    let err = device
        .execute(Instruction::UpdateWeight {
            layer: 1,
            lr_shift: 4,
        })
        .unwrap_err();
    assert_eq!(err, GuardNnError::InvalidState("layer has no weights"));
}

#[test]
fn wrong_gradient_read_ctr_garbles_training() {
    // A malicious host lying about the gradient VN corrupts the update but
    // never sees plaintext.
    let honest = {
        let (mut device, mut user, mut host) = setup(4, false);
        let net = testnet::tiny_mlp();
        host.train_step(&mut device, &mut user, &net, &[1; 8], &[5, -5], 2)
            .expect("train");
        host.infer(&mut device, &mut user, &net, &[2; 8])
            .expect("infer")
            .0
    };
    let malicious = {
        let (mut device, mut user, mut host) = setup(4, false);
        let net = testnet::tiny_mlp();
        // Forward + SetOutputGrad as usual.
        host.infer(&mut device, &mut user, &net, &[1; 8])
            .expect("infer");
        let msg = user.encrypt_tensor(&[5, -5]).expect("enc");
        device
            .execute(Instruction::SetOutputGrad { message: msg })
            .expect("grad");
        // Backward layer 1 with a WRONG gradient VN.
        host.set_read_ctr_for_edge(&mut device, &net, 1, (1 << 32) | 1)
            .expect("ctr");
        host.set_read_ctr_for_grad_edge(&mut device, &net, 2, 0xBAD)
            .expect("ctr");
        device
            .execute(Instruction::Backward { layer: 1 })
            .expect("backward");
        // Update with the (garbled) weight gradient.
        let start = device.wgrad_region(1).expect("region");
        device
            .execute(Instruction::SetReadCtr {
                start,
                end: start + 64,
                vn: (1 << 32) | 4,
            })
            .expect("ctr");
        device
            .execute(Instruction::UpdateWeight {
                layer: 1,
                lr_shift: 2,
            })
            .expect("update");
        host.infer(&mut device, &mut user, &net, &[2; 8])
            .expect("infer")
            .0
    };
    assert_ne!(
        honest, malicious,
        "garbled gradients must corrupt the update"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Device training equals the unprotected reference for random
    /// inputs/gradients/learning rates, with and without integrity.
    #[test]
    fn training_matches_reference(
        seed in 0u64..50,
        input in proptest::collection::vec(-20i32..20, 8),
        d_out in proptest::collection::vec(-10i32..10, 2),
        lr_shift in 0u32..8,
        integrity in any::<bool>(),
    ) {
        let (mut device, mut user, mut host) = setup(seed + 10, integrity);
        let net = testnet::tiny_mlp();
        let weights = testnet::tiny_mlp_weights((seed + 10) as i32);
        host.train_step(&mut device, &mut user, &net, &input, &d_out, lr_shift)
            .expect("train");
        let probe = vec![1, -1, 2, -2, 3, -3, 4, -4];
        let (out, _) = host.infer(&mut device, &mut user, &net, &probe).expect("infer");
        let updated = testnet::reference_train_step(&net, &weights, &input, &d_out, lr_shift);
        prop_assert_eq!(out, testnet::reference_forward(&net, &updated, &probe));
    }
}
