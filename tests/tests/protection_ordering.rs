//! Cross-crate invariant: for any network shape, the protection schemes
//! order as NP ≤ GuardNN_C ≤ GuardNN_CI ≤ BP in both traffic and time.

use guardnn::perf::{evaluate_all, EvalConfig, Mode, Scheme};
use guardnn_models::layer::{conv, fc};
use guardnn_models::{Layer, Network, Op};
use proptest::prelude::*;

fn random_net(convs: usize, ch: usize, hw: usize, fc_out: usize) -> Network {
    let mut layers: Vec<Layer> = Vec::new();
    let mut in_c = 3;
    for i in 0..convs {
        layers.push(conv(format!("c{i}"), hw, in_c, ch, 3, 1, 1));
        in_c = ch;
    }
    layers.push(Layer::new(
        "pool",
        Op::Eltwise {
            elems: in_c * hw * hw / 4,
            reads_per_elem: 4,
        },
    ));
    layers.push(fc("fc", 1, in_c * hw * hw / 4, fc_out));
    Network::new("prop-net", layers)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn scheme_ordering_invariant(
        convs in 1usize..4,
        ch in prop::sample::select(vec![4usize, 8, 16]),
        hw in prop::sample::select(vec![8usize, 16, 32]),
        fc_out in prop::sample::select(vec![10usize, 100]),
        training in any::<bool>(),
    ) {
        let net = random_net(convs, ch, hw, fc_out);
        let mode = if training { Mode::Training { batch: 2 } } else { Mode::Inference };
        let results = evaluate_all(&net, mode, &EvalConfig::default());
        let get = |s: Scheme| results.iter().find(|(sc, _)| *sc == s).map(|(_, r)| r).expect("present");
        let np = get(Scheme::NoProtection);
        let gc = get(Scheme::GuardNnC);
        let gci = get(Scheme::GuardNnCi);
        let bp = get(Scheme::Baseline);

        // Traffic ordering.
        prop_assert_eq!(np.meta_bytes, 0);
        prop_assert_eq!(gc.meta_bytes, 0);
        prop_assert!(gci.meta_bytes <= bp.meta_bytes);
        // Identical data traffic.
        prop_assert_eq!(np.data_bytes, bp.data_bytes);
        prop_assert_eq!(np.data_bytes, gci.data_bytes);
        // Time ordering (small tolerance for timing-model noise).
        prop_assert!(np.exec_ns <= gc.exec_ns * 1.001);
        prop_assert!(gc.exec_ns <= gci.exec_ns * 1.001);
        prop_assert!(gci.exec_ns <= bp.exec_ns * 1.001);
    }
}
