//! Differential tests for the fault-tolerant fleet layer: a fleet under
//! injected transient faults and a mid-batch device crash must, after
//! retries and one migration, produce outputs bit-identical to an
//! unfaulted serial [`DeviceServer`] run — for every perf scheme — and
//! surface the recovery in the observability snapshot.

use guardnn::device::GuardNnDevice;
use guardnn::fleet::{
    DeviceFault, DeviceFaultPlan, DeviceHealth, DeviceId, FleetPolicy, FleetSupervisor,
};
use guardnn::perf::Scheme;
use guardnn::server::DeviceServer;
use guardnn::session::RemoteUser;
use guardnn::testnet;
use guardnn_crypto::schnorr::VerifyingKey;
use guardnn_obs::clock::ManualClock;
use guardnn_obs::Recorder;
use guardnn_tests::chaos::integrity_of;

const MAKER_SEED: u64 = 4242;
const WEIGHT_SEED: i32 = 21;

fn fleet_of(n: usize) -> (FleetSupervisor, VerifyingKey) {
    let mut devices = Vec::new();
    let mut maker = None;
    for i in 0..n {
        let (d, pk) = GuardNnDevice::provision(700 + i as u64, MAKER_SEED);
        maker = Some(pk);
        devices.push(d);
    }
    (
        FleetSupervisor::new(devices, FleetPolicy::default()),
        maker.expect("at least one device"),
    )
}

fn batch_inputs(n: usize) -> Vec<Vec<i32>> {
    (0..n)
        .map(|k| (0..8).map(|i| ((k * 11 + i * 3) as i32 % 17) - 8).collect())
        .collect()
}

/// The unfaulted oracle: the same batch served serially by one plain
/// [`DeviceServer`].
fn serial_oracle(integrity: bool, inputs: &[Vec<i32>]) -> Vec<Vec<i32>> {
    let (device, maker_pk) = GuardNnDevice::provision(999, MAKER_SEED);
    let mut server = DeviceServer::new(device);
    let mut user = RemoteUser::new(maker_pk, 31);
    let net = testnet::tiny_mlp();
    let weights = testnet::tiny_mlp_weights(WEIGHT_SEED);
    let sid = server.connect(&mut user).expect("connect");
    server
        .establish(sid, &mut user, integrity)
        .expect("establish");
    server
        .load_model(sid, &mut user, &net, &weights)
        .expect("load");
    server
        .infer_batch(sid, &mut user, inputs)
        .expect("serial batch")
}

/// Transient burst during submission plus a permanent crash mid-batch:
/// the session retries through the burst in place, migrates exactly once
/// for the crash, and the six outputs are bit-identical to the serial
/// oracle — under every scheme. The recovery is visible in the snapshot
/// and the migrated device imported the weights exactly once.
#[test]
fn faulted_fleet_matches_unfaulted_serial_run() {
    let inputs = batch_inputs(6);
    for scheme in Scheme::all() {
        let integrity = integrity_of(scheme);
        let expected = serial_oracle(integrity, &inputs);

        let (mut fleet, maker_pk) = fleet_of(3);
        let clock = ManualClock::new();
        let recorder = Recorder::builder().manual_clock(clock.clone()).build();
        fleet.set_recorder(recorder.clone());
        fleet.set_manual_clock(clock);
        // Ops 0..2 are connect/establish/load, ops 3.. submit the batch.
        // The transient window at ops 6..7 is consumed by the two retries
        // of the fourth submission; op 18 lands inside the second job.
        fleet
            .set_fault_plan(
                DeviceId(0),
                DeviceFaultPlan {
                    faults: vec![
                        DeviceFault::Transient { at: 6, count: 2 },
                        DeviceFault::Crash { at: 18 },
                    ],
                },
            )
            .expect("plan");

        let net = testnet::tiny_mlp();
        let weights = testnet::tiny_mlp_weights(WEIGHT_SEED);
        let mut user = RemoteUser::new(maker_pk.clone(), 31);
        let sid = fleet.connect().expect("connect");
        fleet
            .establish(sid, &mut user, integrity)
            .expect("establish");
        fleet
            .load_model(sid, &mut user, &net, &weights)
            .expect("load");
        let outputs = fleet
            .infer_batch(sid, &mut user, &inputs)
            .expect("faulted batch");
        assert_eq!(outputs, expected, "{scheme:?}: outputs diverge from serial");

        // The crash was survived by exactly one migration and the burst
        // by exactly two in-place retries.
        assert_eq!(fleet.session_migrations(sid), Some(1), "{scheme:?}");
        assert_eq!(
            fleet.device_health(DeviceId(0)),
            Some(DeviceHealth::Failed),
            "{scheme:?}"
        );
        let home = fleet.session_device(sid).expect("session placed");
        assert_ne!(home, DeviceId(0), "{scheme:?}: still on the dead device");

        // Migration re-ran the key exchange and re-imported the weights
        // exactly once on the new home device.
        let stats = fleet.device_stats(home).expect("stats");
        assert_eq!(stats.count("INITSESSION"), 1, "{scheme:?}");
        assert_eq!(
            stats.count("SETWEIGHT"),
            net.layers().len() as u64,
            "{scheme:?}"
        );

        // Recovery is observable: counters, the backoff histogram (two
        // waits of 1 and 2 steps), and one recovery-latency sample.
        let snap = recorder.snapshot();
        assert_eq!(snap.counters.get("fleet.migrations"), Some(&1));
        assert_eq!(snap.counters.get("fleet.retries"), Some(&2));
        assert_eq!(snap.counters.get("fleet.faults.transient"), Some(&2));
        assert_eq!(snap.counters.get("fleet.faults.fatal"), Some(&1));
        let backoff = snap.histograms.get("fleet.backoff_steps").expect("hist");
        assert_eq!((backoff.count, backoff.sum), (2, 3));
        let recovery = snap.histograms.get("fleet.recovery_ns").expect("hist");
        assert_eq!(recovery.count, 1);
        assert!(recovery.sum > 0, "recovery latency not measured");
        assert_eq!(snap.gauges.get("fleet.devices.healthy"), Some(&2));
    }
}
