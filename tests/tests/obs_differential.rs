//! Differential tests pinning that the observability layer is purely
//! passive: an **enabled** recorder wired through the full simulation
//! stack must leave every result bit-identical to a disabled one, on
//! every scheme and both DRAM channel modes — while still collecting the
//! counters and per-channel series the metrics snapshot promises.
//!
//! These tests never install the process-global recorder (that would leak
//! an enabled recorder into every other test in this binary); they pass
//! explicit recorders through `evaluate_observed` / `set_recorder`.

use guardnn::device::GuardNnDevice;
use guardnn::perf::{evaluate, evaluate_observed, EvalConfig, Mode, Scheme};
use guardnn::server::DeviceServer;
use guardnn::session::RemoteUser;
use guardnn::testnet;
use guardnn_dram::ChannelMode;
use guardnn_models::zoo;
use guardnn_obs::clock::ManualClock;
use guardnn_obs::Recorder;
use guardnn_tests::chaos::bit_identical;

/// An enabled recorder on a deterministic manual clock — spans record
/// whatever the test dictates, never wall time.
fn manual_recorder() -> (Recorder, ManualClock) {
    let clock = ManualClock::new();
    let rec = Recorder::builder().manual_clock(clock.clone()).build();
    (rec, clock)
}

/// Enabled observability changes no bit of any `RunSummary`: all four
/// schemes, inline and threaded DRAM channels.
#[test]
fn observed_runs_are_bit_identical_to_unobserved() {
    let net = zoo::dlrm();
    for channel_mode in [ChannelMode::Serial, ChannelMode::Threaded] {
        let cfg = EvalConfig {
            channel_mode,
            ..EvalConfig::default()
        };
        for scheme in Scheme::all() {
            let plain = evaluate(&net, Mode::Inference, scheme, &cfg);
            let (rec, _clock) = manual_recorder();
            let observed = evaluate_observed(&net, Mode::Inference, scheme, &cfg, rec.clone());
            assert!(
                bit_identical(&plain, &observed),
                "{scheme:?}/{channel_mode:?}: observed run diverged from plain run"
            );
            // The passive observer still saw the run: DRAM issue counters
            // and the per-channel time series are populated.
            let snap = rec.snapshot();
            assert!(
                snap.counters.get("dram.reads").copied().unwrap_or(0) > 0,
                "{scheme:?}/{channel_mode:?}: no dram.reads counted"
            );
            let qd = snap
                .series
                .get("dram.chan0.queue_depth")
                .unwrap_or_else(|| panic!("{scheme:?}/{channel_mode:?}: no chan0 series"));
            assert!(!qd.points.is_empty(), "chan0 queue-depth series empty");
            assert!(
                snap.histograms.contains_key("perf.simulate_ns"),
                "simulate phase span missing"
            );
        }
    }
}

/// A metered `DeviceServer` returns the same inference results as an
/// unmetered one, and its step-latency histogram meters every step
/// exactly once.
#[test]
fn metered_server_matches_unmetered_and_counts_steps() {
    let net = testnet::tiny_mlp();
    let weights = testnet::tiny_mlp_weights(9);
    let inputs: Vec<Vec<i32>> = (0..3)
        .map(|i| (0..8).map(|j| i * 8 + j - 11).collect())
        .collect();

    let run = |recorder: Option<Recorder>| {
        let (device, maker_pk) = GuardNnDevice::provision(42, 7);
        let mut server = DeviceServer::new(device);
        if let Some(rec) = recorder {
            server.set_recorder(rec);
        }
        let mut user = RemoteUser::new(maker_pk, 500);
        let sid = server.connect(&mut user).expect("connect");
        server.establish(sid, &mut user, true).expect("establish");
        server
            .load_model(sid, &mut user, &net, &weights)
            .expect("load");
        let out = server
            .infer_batch(sid, &mut user, &inputs)
            .expect("infer_batch");
        server.disconnect(sid).expect("disconnect");
        out
    };

    let plain = run(None);
    let (rec, clock) = manual_recorder();
    clock.set(1_000);
    let metered = run(Some(rec.clone()));
    assert_eq!(plain, metered, "metering changed inference results");
    for (out, input) in plain.iter().zip(&inputs) {
        assert_eq!(out, &testnet::tiny_mlp_reference(&weights, input));
    }

    let snap = rec.snapshot();
    let hist = snap
        .histograms
        .get("server.step_ns")
        .expect("step-latency histogram");
    let steps = snap.counters.get("server.steps").copied().unwrap_or(0);
    assert!(steps > 0, "no steps metered");
    assert_eq!(hist.count, steps, "every step meters exactly one latency");
    // The per-session histogram splits out the same steps.
    assert!(
        snap.histograms
            .keys()
            .any(|k| k.starts_with("server.step_ns.session.")),
        "per-session step histogram missing"
    );
    assert_eq!(
        snap.gauges.get("server.sessions").copied(),
        Some(0),
        "session gauge must return to zero after disconnect"
    );
    let kinds: Vec<&str> = snap.events.iter().map(|e| e.kind.as_str()).collect();
    for kind in [
        "server.connect",
        "server.establish",
        "server.load_model",
        "server.disconnect",
    ] {
        assert!(kinds.contains(&kind), "journal missing {kind} event");
    }
}
