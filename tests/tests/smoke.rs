//! Workspace-wiring smoke test: the `guardnn` crate-root doc example, run
//! as a plain integration test so a broken workspace fails loudly even
//! when doc tests are skipped.

use guardnn::device::GuardNnDevice;
use guardnn::host::UntrustedHost;
use guardnn::session::RemoteUser;
use guardnn::testnet;

/// Mirrors the end-to-end private-inference example from `guardnn`'s
/// crate-root docs (`crates/core/src/lib.rs`); keep the two in sync.
#[test]
fn crate_root_doc_example_end_to_end() {
    let (mut device, manufacturer_pk) = GuardNnDevice::provision(7, 1);
    let mut user = RemoteUser::new(manufacturer_pk, 99);

    let net = testnet::tiny_mlp();
    let weights = testnet::tiny_mlp_weights(3);
    let input = vec![1, -2, 3, 4, -5, 6, 7, -8];

    let mut host = UntrustedHost::new();
    let output = host
        .run_inference(&mut device, &mut user, &net, &weights, &input, true)
        .expect("protected inference succeeds");
    assert_eq!(output, testnet::tiny_mlp_reference(&weights, &input));
}

/// The nine-network zoo and the perf glue are reachable from the test
/// crate — a cheap cross-crate link check over the whole dependency DAG.
#[test]
fn workspace_dag_links() {
    let nets = guardnn_models::zoo::figure3_inference_suite();
    assert_eq!(nets.len(), 9, "paper evaluates nine networks");
    let row = guardnn_fpga::chaidnn::FpgaConfig::new(512, guardnn_fpga::chaidnn::Precision::Bit8)
        .evaluate(&guardnn_models::zoo::alexnet());
    assert!(row.guardnn_fps > 0.0 && row.guardnn_fps < row.baseline_fps);
}
