//! End-to-end integration: the full GuardNN protocol across crypto,
//! device, host, and memory-protection crates.

use guardnn::device::GuardNnDevice;
use guardnn::host::UntrustedHost;
use guardnn::isa::{Instruction, Response};
use guardnn::session::RemoteUser;
use guardnn::testnet;
use guardnn::GuardNnError;

fn fresh(seed: u64) -> (GuardNnDevice, RemoteUser) {
    let (device, manufacturer_pk) = GuardNnDevice::provision(seed, seed.wrapping_mul(31));
    let user = RemoteUser::new(manufacturer_pk, seed ^ 0x55);
    (device, user)
}

#[test]
fn mlp_inference_with_integrity_matches_reference() {
    let (mut device, mut user) = fresh(1);
    let net = testnet::tiny_mlp();
    let weights = testnet::tiny_mlp_weights(7);
    let input = vec![10, -20, 30, -40, 50, -60, 70, -80];
    let out = UntrustedHost::new()
        .run_inference(&mut device, &mut user, &net, &weights, &input, true)
        .expect("protocol");
    assert_eq!(out, testnet::tiny_mlp_reference(&weights, &input));
}

#[test]
fn cnn_inference_without_integrity_matches_reference() {
    let (mut device, mut user) = fresh(2);
    let net = testnet::tiny_cnn();
    let weights = testnet::deterministic_weights(&net, 4);
    let input: Vec<i32> = (0..16).map(|i| i * i % 7 - 3).collect();
    let out = UntrustedHost::new()
        .run_inference(&mut device, &mut user, &net, &weights, &input, false)
        .expect("protocol");
    assert_eq!(out, testnet::reference_forward(&net, &weights, &input));
}

#[test]
fn multiple_inputs_in_one_session() {
    // Re-running the full protocol per input re-keys each time; but the
    // same device can also serve several sequential sessions.
    let (mut device, mut user) = fresh(3);
    let net = testnet::tiny_mlp();
    let weights = testnet::tiny_mlp_weights(1);
    for trial in 0..3 {
        let input: Vec<i32> = (0..8).map(|i| i + trial).collect();
        let out = UntrustedHost::new()
            .run_inference(&mut device, &mut user, &net, &weights, &input, true)
            .expect("protocol");
        assert_eq!(
            out,
            testnet::tiny_mlp_reference(&weights, &input),
            "trial {trial}"
        );
    }
}

#[test]
fn device_server_batch_matches_serial_across_crates() {
    // Integration-level pin of the batching contract: infer_batch over N
    // inputs in one session is bit-identical to N serial infer calls and
    // costs exactly one key exchange + one weight import.
    use guardnn::server::DeviceServer;

    let net = testnet::tiny_cnn();
    let weights = testnet::deterministic_weights(&net, 4);
    let inputs: Vec<Vec<i32>> = (0..4)
        .map(|t| (0..16).map(|i| (i * (t + 3)) % 5 - 2).collect())
        .collect();

    let (device, maker_pk) = GuardNnDevice::provision(41, 83);
    let mut server = DeviceServer::new(device);
    let mut user = RemoteUser::new(maker_pk, 11);
    let sid = server.connect(&mut user).expect("connect");
    server.establish(sid, &mut user, true).expect("establish");
    server
        .load_model(sid, &mut user, &net, &weights)
        .expect("load");
    let batch = server
        .infer_batch(sid, &mut user, &inputs)
        .expect("batched inference");

    assert_eq!(server.stats().count("INITSESSION"), 1);
    assert_eq!(
        server.stats().count("SETWEIGHT"),
        weights.iter().filter(|w| !w.is_empty()).count() as u64
    );

    // Serial runs in a fresh but identically provisioned session.
    let (device2, maker_pk2) = GuardNnDevice::provision(41, 83);
    let mut server2 = DeviceServer::new(device2);
    let mut user2 = RemoteUser::new(maker_pk2, 11);
    let sid2 = server2.connect(&mut user2).expect("connect");
    server2
        .establish(sid2, &mut user2, true)
        .expect("establish");
    server2
        .load_model(sid2, &mut user2, &net, &weights)
        .expect("load");
    for (input, batched) in inputs.iter().zip(&batch) {
        let serial = server2.infer(sid2, &mut user2, input).expect("serial");
        assert_eq!(&serial, batched, "batch must be bit-identical to serial");
        assert_eq!(batched, &testnet::reference_forward(&net, &weights, input));
    }
}

#[test]
fn wrong_manufacturer_rejected() {
    let (mut device, _) = fresh(4);
    // User trusts a DIFFERENT manufacturer.
    let (_, wrong_pk) = GuardNnDevice::provision(99, 999);
    let mut user = RemoteUser::new(wrong_pk, 5);
    let Response::Pk(cert) = device.execute(Instruction::GetPk).expect("getpk") else {
        panic!("expected Pk");
    };
    assert_eq!(
        user.authenticate_device(&cert),
        Err(GuardNnError::BadCertificate)
    );
}

#[test]
fn host_cannot_reorder_weights_undetected() {
    // Load weights into the WRONG layers: the computation garbles or
    // shape-checks, and with integrity the attestation chain records the
    // actual SetWeight order — the user's expected chain will not match.
    let (mut device, mut user) = fresh(5);
    let net = testnet::tiny_mlp();
    let weights = testnet::tiny_mlp_weights(2);

    let Response::Pk(cert) = device.execute(Instruction::GetPk).expect("pk") else {
        panic!()
    };
    user.authenticate_device(&cert).expect("auth");
    let up = user.begin_session();
    let Response::SessionInit { device_public, .. } = device
        .execute(Instruction::InitSession {
            user_public: up,
            enable_integrity: true,
        })
        .expect("init")
    else {
        panic!()
    };
    user.complete_session(&device_public).expect("session");
    device
        .execute(Instruction::LoadModel {
            network: net.clone(),
        })
        .expect("load");

    // Swap the two layers' weights: shapes differ (8×4 vs 4×2), so the
    // device rejects outright.
    let msg = user.encrypt_tensor(&weights[1]).expect("enc");
    let err = device
        .execute(Instruction::SetWeight {
            layer: 0,
            message: msg,
        })
        .unwrap_err();
    assert!(matches!(err, GuardNnError::ShapeMismatch { .. }));
}

#[test]
fn export_before_forward_rejected() {
    let (mut device, mut user) = fresh(6);
    let net = testnet::tiny_mlp();
    let Response::Pk(cert) = device.execute(Instruction::GetPk).expect("pk") else {
        panic!()
    };
    user.authenticate_device(&cert).expect("auth");
    let up = user.begin_session();
    let Response::SessionInit { device_public, .. } = device
        .execute(Instruction::InitSession {
            user_public: up,
            enable_integrity: false,
        })
        .expect("init")
    else {
        panic!()
    };
    user.complete_session(&device_public).expect("session");
    device
        .execute(Instruction::LoadModel { network: net })
        .expect("load");
    let err = device.execute(Instruction::ExportOutput).unwrap_err();
    assert_eq!(err, GuardNnError::InvalidState("no output computed"));
}

#[test]
fn session_reinit_clears_state() {
    let (mut device, mut user) = fresh(7);
    let net = testnet::tiny_mlp();
    let weights = testnet::tiny_mlp_weights(1);
    let input = vec![1; 8];
    UntrustedHost::new()
        .run_inference(&mut device, &mut user, &net, &weights, &input, true)
        .expect("first run");
    // A new InitSession wipes keys and model state: Forward must fail until
    // the model is reloaded.
    let up = user.begin_session();
    let Response::SessionInit { .. } = device
        .execute(Instruction::InitSession {
            user_public: up,
            enable_integrity: true,
        })
        .expect("reinit")
    else {
        panic!()
    };
    let err = device
        .execute(Instruction::Forward { layer: 0 })
        .unwrap_err();
    assert_eq!(err, GuardNnError::InvalidState("no model loaded"));
}
