//! Property-level chaos coverage: seeded random fault plans are always
//! detected, and counter exhaustion is recoverable without ever making
//! an old version number replayable.

use guardnn::adversary::{
    park_counters, replay_chunk, run_tampered_input_stream, snapshot_chunk, FaultPlan,
};
use guardnn::device::GuardNnDevice;
use guardnn::host::UntrustedHost;
use guardnn::isa::Instruction;
use guardnn::session::RemoteUser;
use guardnn::testnet;
use guardnn::GuardNnError;
use proptest::prelude::*;

/// A fresh single-session world with the model loaded and one honest
/// inference already run.
fn loaded(integrity: bool) -> (GuardNnDevice, RemoteUser, UntrustedHost) {
    let (mut device, maker_pk) = GuardNnDevice::provision(0xC0, 0x11AF);
    let mut user = RemoteUser::new(maker_pk, 0x2EED);
    let mut host = UntrustedHost::new();
    let net = testnet::tiny_mlp();
    let weights = testnet::tiny_mlp_weights(7);
    host.run_inference(
        &mut device,
        &mut user,
        &net,
        &weights,
        &[9, 8, 7, 6, 5, 4, 3, 2],
        integrity,
    )
    .expect("honest inference");
    (device, user, host)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any seed-derived fault plan against a sealed input stream trips
    /// the channel authentication check — drop, replay, reorder, and
    /// corrupt alike, at every valid stream position.
    #[test]
    fn random_fault_plans_always_detected(seed in any::<u64>()) {
        let inputs: Vec<Vec<i32>> = (0..5).map(|i| vec![i - 2; 8]).collect();
        let plan = FaultPlan::from_seed(seed, inputs.len());
        let (mut device, mut user, _host) = loaded(true);
        let (_, err) = run_tampered_input_stream(&mut device, &mut user, &inputs, plan)
            .expect("stream runs");
        prop_assert!(
            err == Some(GuardNnError::ChannelAuth),
            "plan {:?} surfaced {:?}",
            plan,
            err
        );
    }
}

/// After `CounterExhausted`, a fresh key exchange on the same slot
/// restores bit-exact service — and ciphertext captured under the old
/// keys is unreplayable even with its old version number re-declared.
#[test]
fn counter_exhaustion_recovery() {
    let net = testnet::tiny_mlp();
    let weights = testnet::tiny_mlp_weights(7);
    let input = [9, 8, 7, 6, 5, 4, 3, 2];
    let reference = testnet::tiny_mlp_reference(&weights, &input);

    let (mut device, maker_pk) = GuardNnDevice::provision(0xC1, 0x11B0);
    let mut user = RemoteUser::new(maker_pk, 0x2EEE);
    let mut host = UntrustedHost::new();
    host.establish(&mut device, &mut user, &net, &weights, true)
        .expect("establish");
    let (out, old_vns) = host
        .infer(&mut device, &mut user, &net, &input)
        .expect("infer");
    assert_eq!(out, reference);

    // Capture edge 1 (layer 0's output) under the first key epoch.
    let edge1 = device.feature_region(1).expect("layout");
    let stale = snapshot_chunk(&mut device, edge1).expect("snapshot");

    // Exhaust CTR_IN at the u32 boundary: the next sealed input refuses
    // with a typed error instead of reusing a version number.
    park_counters(&mut device, u32::MAX, 0, 0).expect("park");
    let message = user.encrypt_tensor(&input).expect("seal");
    assert_eq!(
        device
            .execute(Instruction::SetInput { message })
            .unwrap_err(),
        GuardNnError::CounterExhausted { counter: "CTR_IN" }
    );

    // Recovery: re-key on the same device slot (the host closes its old
    // session first, so the table does not grow) and serve bit-exact.
    host.establish(&mut device, &mut user, &net, &weights, true)
        .expect("re-key");
    assert_eq!(device.session_count(), 1, "re-key reuses the slot");
    let (out, _) = host
        .infer(&mut device, &mut user, &net, &input)
        .expect("infer after re-key");
    assert_eq!(out, reference);

    // Old version numbers are dead with the old keys: replaying the
    // stale chunk AND its old VN must fail integrity, not decrypt.
    replay_chunk(&mut device, stale).expect("replay");
    host.set_read_ctr_for_edge(&mut device, &net, 1, old_vns[1])
        .expect("declare stale VN");
    assert!(
        matches!(
            device.execute(Instruction::Forward { layer: 1 }),
            Err(GuardNnError::IntegrityViolation { .. })
        ),
        "stale ciphertext + stale VN must not verify under fresh keys"
    );
}
