//! Property tests for the multi-session [`DeviceServer`]: any interleaving
//! of concurrent sessions must behave exactly like serial execution, and
//! one session's (malicious) `SetReadCTR` must never perturb another's.

use guardnn::adversary::park_counters;
use guardnn::device::GuardNnDevice;
use guardnn::server::{DeviceServer, SessionId, SessionState, StepProgress};
use guardnn::session::RemoteUser;
use guardnn::testnet;
use proptest::prelude::*;

/// Server + per-session users, ids, inputs, and expected outputs.
type Fixture = (
    DeviceServer,
    Vec<RemoteUser>,
    Vec<SessionId>,
    Vec<Vec<i32>>,
    Vec<Vec<i32>>,
);

/// Builds a server with `n` fully set-up sessions on one device, each with
/// its own user, seeded weights, and input. Returns the per-session
/// expected (serial/reference) outputs alongside.
fn setup(n: usize, integrity: bool) -> Fixture {
    let (device, maker_pk) = GuardNnDevice::provision(500 + n as u64, 900 + n as u64);
    let mut server = DeviceServer::new(device);
    let net = testnet::tiny_mlp();
    let mut users = Vec::new();
    let mut sids = Vec::new();
    let mut inputs = Vec::new();
    let mut expected = Vec::new();
    for i in 0..n {
        let mut user = RemoteUser::new(maker_pk.clone(), 7000 + i as u64);
        let weights = testnet::tiny_mlp_weights(10 + i as i32);
        let input: Vec<i32> = (0..8).map(|k| (k + 1) * (i as i32 + 1) - 9).collect();
        let sid = server.connect(&mut user).expect("connect");
        server
            .establish(sid, &mut user, integrity)
            .expect("establish");
        server
            .load_model(sid, &mut user, &net, &weights)
            .expect("load");
        expected.push(testnet::tiny_mlp_reference(&weights, &input));
        users.push(user);
        sids.push(sid);
        inputs.push(input);
    }
    (server, users, sids, inputs, expected)
}

/// Drives the schedule (indices into `sids`, modulo the session count),
/// then round-robins every unfinished session to completion.
fn run_schedule(server: &mut DeviceServer, sids: &[SessionId], schedule: &[usize]) {
    let mut done = vec![false; sids.len()];
    for &pick in schedule {
        let i = pick % sids.len();
        if !done[i] {
            done[i] = server.step(sids[i]).expect("step") == StepProgress::Finished;
        }
    }
    while done.iter().any(|d| !d) {
        for (i, sid) in sids.iter().enumerate() {
            if !done[i] {
                done[i] = server.step(*sid).expect("step") == StepProgress::Finished;
            }
        }
    }
}

/// One `step()` error path: mutate a mid-inference session, then assert
/// the typed error `step()` surfaces and the session state left behind.
struct ErrorPath {
    name: &'static str,
    integrity: bool,
    inject: fn(&mut DeviceServer, SessionId, &mut RemoteUser),
    expect_err: &'static str,
    expect_state: Option<SessionState>,
}

/// Every `step()` error path leaves the session in a well-defined state:
/// dead handles are typed `UnknownSession`, a failed session is terminal
/// (`InvalidState` until disconnected), an integrity fault fires mid-job
/// without tearing the session down, and counter exhaustion is typed
/// before any counter reuse.
#[test]
fn step_error_paths_leave_typed_errors_and_states() {
    let table = [
        ErrorPath {
            name: "unknown-session",
            integrity: false,
            inject: |server, sid, _| server.disconnect(sid).expect("disconnect"),
            expect_err: "UnknownSession",
            expect_state: None,
        },
        ErrorPath {
            name: "failed-terminal",
            integrity: false,
            inject: |server, sid, _| server.fail_session(sid).expect("fail"),
            expect_err: "InvalidState",
            expect_state: Some(SessionState::Failed),
        },
        ErrorPath {
            name: "poisoned-read-ctr",
            integrity: true,
            inject: |server, sid, _| {
                server.poison_read_ctr(sid, 0, 0xDEAD).expect("poison");
            },
            expect_err: "IntegrityViolation",
            expect_state: Some(SessionState::Inferring),
        },
        ErrorPath {
            name: "counter-exhausted",
            integrity: false,
            inject: |server, _, _| {
                park_counters(server.device_mut(), u32::MAX, 0, 0).expect("park");
            },
            expect_err: "CounterExhausted",
            expect_state: Some(SessionState::Inferring),
        },
    ];
    for row in table {
        let (mut server, mut users, sids, inputs, _) = setup(1, row.integrity);
        server
            .begin_infer(sids[0], &mut users[0], &inputs[0])
            .expect("begin");
        (row.inject)(&mut server, sids[0], &mut users[0]);
        let err = (0..20)
            .find_map(|_| server.step(sids[0]).err())
            .unwrap_or_else(|| panic!("{}: step never errored", row.name));
        assert_eq!(err.name(), row.expect_err, "{}: wrong error", row.name);
        assert_eq!(
            server.session_state(sids[0]),
            row.expect_state,
            "{}: wrong state",
            row.name
        );
        // A failed session is terminal but not a leak: it can still be
        // disconnected, and its slot becomes reusable.
        if row.expect_state == Some(SessionState::Failed) {
            server
                .disconnect(sids[0])
                .expect("disconnect failed session");
            assert_eq!(server.session_state(sids[0]), None);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any interleaving of 2–4 concurrent sessions produces, for every
    /// session, exactly the output serial execution produces.
    #[test]
    fn arbitrary_interleavings_match_serial(
        n in 2usize..5,
        schedule in proptest::collection::vec(0usize..4, 0..80),
        integrity in any::<bool>(),
    ) {
        let (mut server, mut users, sids, inputs, expected) = setup(n, integrity);
        for i in 0..n {
            server
                .begin_infer(sids[i], &mut users[i], &inputs[i])
                .expect("begin");
        }
        run_schedule(&mut server, &sids, &schedule);
        for i in 0..n {
            let out = server
                .take_output(sids[i], &mut users[i])
                .expect("take")
                .expect("finished");
            prop_assert_eq!(&out, &expected[i]);
        }
    }

    /// A malicious wrong `SetReadCTR` in one session garbles (only) that
    /// session; every other session still matches serial execution, under
    /// any interleaving.
    #[test]
    fn wrong_read_ctr_does_not_cross_sessions(
        n in 2usize..5,
        schedule in proptest::collection::vec(0usize..4, 0..80),
        victim_pick in 0usize..4,
        bad_vn in any::<u64>(),
    ) {
        // No integrity: the wrong VN garbles instead of faulting, so the
        // victim session runs to completion alongside the others.
        let (mut server, mut users, sids, inputs, expected) = setup(n, false);
        let victim = victim_pick % n;
        for i in 0..n {
            server
                .begin_infer(sids[i], &mut users[i], &inputs[i])
                .expect("begin");
        }
        // Poison the victim's input-edge read counter with an arbitrary
        // wrong VN (the honest one for edge 0 is CTR_IN << 32 = 1 << 32).
        prop_assume!(bad_vn != 1u64 << 32);
        server
            .poison_read_ctr(sids[victim], 0, bad_vn)
            .expect("poison");
        run_schedule(&mut server, &sids, &schedule);
        for i in 0..n {
            let out = server
                .take_output(sids[i], &mut users[i])
                .expect("take")
                .expect("finished");
            if i == victim {
                prop_assert_ne!(&out, &expected[i]);
            } else {
                prop_assert_eq!(&out, &expected[i]);
            }
        }
    }
}
