//! Property-based tests (proptest) over the core invariants.

use guardnn_crypto::cmac::Cmac;
use guardnn_crypto::ctr::AesCtr;
use guardnn_crypto::sha256::Sha256;
use guardnn_memprot::cache::MetaCache;
use guardnn_memprot::functional::ProtectedMemory;
use guardnn_memprot::vn::VersionCounters;
use guardnn_models::graph::ExecutionPlan;
use guardnn_models::layer::{conv, fc};
use guardnn_models::{ConvSpec, Network, Op};
use proptest::prelude::*;

proptest! {
    /// AES-CTR is an involution for any (address, version, data).
    #[test]
    fn ctr_round_trip(addr in 0u64..1 << 40, vn in any::<u64>(), data in proptest::collection::vec(any::<u8>(), 1..256)) {
        let addr = addr & !0xF; // 16-byte aligned
        let ctr = AesCtr::new(&[0x33; 16]);
        let mut buf = data.clone();
        ctr.apply_range(addr, vn, &mut buf);
        ctr.apply_range(addr, vn, &mut buf);
        prop_assert_eq!(buf, data);
    }

    /// Distinct (address, VN) pairs produce distinct keystream pads.
    #[test]
    fn ctr_pads_distinct(a1 in 0u64..1 << 30, a2 in 0u64..1 << 30, v1 in any::<u64>(), v2 in any::<u64>()) {
        prop_assume!((a1, v1) != (a2, v2));
        let ctr = AesCtr::new(&[0x44; 16]);
        let p1 = ctr.pad(guardnn_crypto::ctr::CounterBlock::new(a1, v1));
        let p2 = ctr.pad(guardnn_crypto::ctr::CounterBlock::new(a2, v2));
        prop_assert_ne!(p1, p2);
    }

    /// CMAC verification accepts the genuine tag and rejects any single
    /// bit flip in the message.
    #[test]
    fn cmac_detects_bit_flips(data in proptest::collection::vec(any::<u8>(), 1..128), bit in 0usize..1024) {
        let cmac = Cmac::new(&[0x55; 16]);
        let tag = cmac.compute(&data);
        prop_assert!(cmac.verify(&data, &tag));
        let mut mutated = data.clone();
        let idx = (bit / 8) % mutated.len();
        mutated[idx] ^= 1 << (bit % 8);
        prop_assert!(!cmac.verify(&mutated, &tag));
    }

    /// Streaming SHA-256 equals one-shot for any split point.
    #[test]
    fn sha256_streaming_consistent(data in proptest::collection::vec(any::<u8>(), 0..512), split in 0usize..512) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    /// Protected memory round-trips any aligned write under any VN, and
    /// the stored bytes never equal the plaintext.
    #[test]
    fn protected_memory_round_trip(
        addr in (0u64..1 << 20).prop_map(|a| a & !0xF),
        vn in any::<u64>(),
        data in proptest::collection::vec(any::<u8>(), 16..256),
    ) {
        let mut mem = ProtectedMemory::new(&[0x66; 16], Some([0x77; 16]));
        mem.write(addr, &data, vn);
        let back = mem.read(addr, data.len(), vn).expect("verified read");
        prop_assert_eq!(&back, &data);
        // 16+ bytes of randomized CTR output colliding with plaintext is
        // astronomically unlikely.
        prop_assert_ne!(mem.raw(addr, data.len()), data);
    }

    /// Any tamper of any ciphertext byte inside a MACed chunk is detected.
    #[test]
    fn protected_memory_detects_tamper(offset in 0u64..512) {
        let mut mem = ProtectedMemory::new(&[0x66; 16], Some([0x77; 16]));
        mem.write(0, &[0xC3; 512], 9);
        mem.tamper(offset, 0x80);
        prop_assert!(mem.read(0, 512, 9).is_err());
    }

    /// Feature-write VNs never repeat over any interleaving of inputs and
    /// passes.
    #[test]
    fn vn_uniqueness(ops in proptest::collection::vec(any::<bool>(), 1..200)) {
        let mut vc = VersionCounters::new();
        vc.next_input().expect("far from exhaustion");
        let mut seen = std::collections::HashSet::new();
        seen.insert(vc.feature_write_vn());
        for new_input in ops {
            if new_input {
                vc.next_input().expect("far from exhaustion");
            } else {
                vc.next_feature_write().expect("far from exhaustion");
            }
            prop_assert!(seen.insert(vc.feature_write_vn()), "VN reused");
        }
    }

    /// Cache invariant: the same line never produces two consecutive
    /// misses without an intervening eviction, and flush is idempotent.
    #[test]
    fn cache_no_double_miss(addrs in proptest::collection::vec(0u64..1 << 16, 1..100)) {
        let mut cache = MetaCache::new(64 << 10, 8); // big enough: no evictions
        for &a in &addrs {
            cache.access(a, false);
            let second = cache.access(a, false);
            prop_assert!(second.hit);
        }
        prop_assert!(cache.flush_dirty().is_empty()); // nothing dirty
    }

    /// The im2col GEMM mapping preserves MAC counts for arbitrary convs.
    #[test]
    fn conv_gemm_macs_preserved(
        in_c in 1usize..16, out_c in 1usize..16, k in 1usize..5,
        stride in 1usize..3, hw in 4usize..32, depthwise in any::<bool>(),
    ) {
        let spec = ConvSpec {
            in_c,
            out_c: if depthwise { in_c } else { out_c },
            kh: k, kw: k, stride,
            pad: k / 2,
            in_h: hw, in_w: hw,
            depthwise,
        };
        let layer = guardnn_models::Layer::new("c", Op::Conv(spec));
        let gemm = layer.to_gemm().expect("conv maps");
        prop_assert_eq!(gemm.macs(), layer.macs());
    }

    /// Training plans always run every forward before any backward, and
    /// backward GEMMs preserve the forward MAC count.
    #[test]
    fn training_plan_invariants(batch in 1usize..5, seed in 0i32..100) {
        let _ = seed;
        let net = Network::new("p", vec![conv("c", 8, 2, 4, 3, 1, 1), fc("f", 1, 256, 10)]);
        let plan = ExecutionPlan::training(&net, batch);
        let first_bwd = plan
            .passes()
            .iter()
            .position(|p| p.kind != guardnn_models::graph::PassKind::Forward);
        if let Some(idx) = first_bwd {
            prop_assert!(plan.passes()[..idx]
                .iter()
                .all(|p| p.kind == guardnn_models::graph::PassKind::Forward));
        }
        prop_assert!(plan.total_bytes(1) > 0);
    }
}
