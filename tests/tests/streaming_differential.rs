//! Differential coverage for the streaming simulation pipeline: the
//! pull-based path (generate → protect → schedule without materializing)
//! must be **bit-identical** to the materialized oracle — same cycle
//! counts, traffic bytes, and row-buffer statistics — while buffering
//! orders of magnitude less trace data.
//!
//! Three layers of pinning:
//!
//! 1. generation: `TraceBuilder::stream` equals `TraceBuilder::build` on
//!    all nine paper networks, inference and training (the layout math is
//!    shared, so this pins the generator's lazy expansion);
//! 2. end-to-end: `perf::evaluate` (streaming, serial and per-channel
//!    threaded) equals `perf::evaluate_materialized` across random
//!    networks, modes, and all four schemes (property test), plus the
//!    paper's two smallest networks deterministically;
//! 3. memory: the streaming generator's peak buffer on BERT/wav2vec2 is
//!    ≥10× (in fact ≥1000×) smaller than the materialized trace.

use guardnn::perf::{evaluate, evaluate_materialized, EvalConfig, Mode, Parallelism, Scheme};
use guardnn_dram::ChannelMode;
use guardnn_memprot::harness::RunSummary;
use guardnn_models::graph::ExecutionPlan;
use guardnn_models::layer::{conv, dwconv, fc};
use guardnn_models::{zoo, Gemm, Layer, Network, Op};
use guardnn_systolic::{ArrayConfig, TraceBuilder, TraceItem, TraceSource};
use proptest::prelude::*;

fn assert_bit_identical(a: &RunSummary, b: &RunSummary, what: &str) {
    assert_eq!(a.scheme, b.scheme, "{what}");
    assert_eq!(a.data_bytes, b.data_bytes, "{what}: data bytes");
    assert_eq!(a.meta_bytes, b.meta_bytes, "{what}: meta bytes");
    assert_eq!(a.dram, b.dram, "{what}: DRAM stats (cycles, row buffer)");
    assert_eq!(a.compute_cycles, b.compute_cycles, "{what}: compute");
    assert_eq!(
        a.exec_ns.to_bits(),
        b.exec_ns.to_bits(),
        "{what}: exec_ns bits"
    );
}

/// Streaming generation must yield exactly the events and pass records the
/// materialized builder collects — across every network of the paper's
/// evaluation, in both modes. (Pure generation: no DRAM simulation, so
/// this sweep over all nine networks stays cheap.)
#[test]
fn stream_equals_build_on_all_nine_networks() {
    for net in zoo::figure3_inference_suite() {
        for (mode, bytes_per_elem) in [(Mode::Inference, 1u64), (Mode::Training { batch: 4 }, 2u64)]
        {
            let plan = match mode {
                Mode::Inference => ExecutionPlan::inference(&net),
                Mode::Training { batch } => ExecutionPlan::training(&net, batch),
            };
            let mut array = ArrayConfig::tpu_v1();
            array.bytes_per_elem = bytes_per_elem;
            let tb = TraceBuilder::new(array, &plan);
            let trace = tb.build(&plan);
            let mut events = trace.events().iter();
            let mut passes = trace.passes().iter();
            let mut streamed_events = 0usize;
            let mut streamed_passes = 0usize;
            for item in tb.stream(&plan) {
                match item {
                    TraceItem::Event(e) => {
                        assert_eq!(
                            Some(&e),
                            events.next(),
                            "{} {mode:?}: event {streamed_events} diverged",
                            net.name()
                        );
                        streamed_events += 1;
                    }
                    TraceItem::PassEnd { perf, .. } => {
                        assert_eq!(
                            Some(&perf),
                            passes.next(),
                            "{} {mode:?}: pass {streamed_passes} diverged",
                            net.name()
                        );
                        streamed_passes += 1;
                    }
                }
            }
            assert!(events.next().is_none(), "stream ended early");
            assert!(passes.next().is_none(), "stream ended early");
        }
    }
}

/// The ROADMAP's trace-memory item, pinned: on the big networks the
/// streaming generator's peak buffer is at least 10× (actually vastly)
/// below the materialized trace.
#[test]
fn streaming_cuts_peak_trace_memory_10x_on_big_networks() {
    for net in [zoo::bert_base(), zoo::wav2vec2_base()] {
        for (mode_name, plan, bytes_per_elem) in [
            ("inference", ExecutionPlan::inference(&net), 1u64),
            ("training", ExecutionPlan::training(&net, 4), 2u64),
        ] {
            let mut array = ArrayConfig::tpu_v1();
            array.bytes_per_elem = bytes_per_elem;
            let tb = TraceBuilder::new(array, &plan);
            let materialized = tb.build(&plan).buffer_bytes();
            let mut stream = tb.stream(&plan);
            stream.by_ref().for_each(drop);
            let streaming = stream.buffer_bytes();
            assert!(
                streaming * 10 <= materialized,
                "{} {mode_name}: streaming {streaming} B vs materialized {materialized} B",
                net.name()
            );
        }
    }
}

/// Deterministic end-to-end pin on the fig3 smoke subset (the two
/// smallest paper networks): every scheme, serial and channel-threaded.
#[test]
fn smoke_networks_end_to_end_identical() {
    let cfg = EvalConfig {
        parallelism: Parallelism::Serial,
        ..EvalConfig::default()
    };
    for net in [zoo::dlrm(), zoo::mobilenet_v1()] {
        for scheme in Scheme::all() {
            let oracle = evaluate_materialized(&net, Mode::Inference, scheme, &cfg);
            for channel_mode in [ChannelMode::Serial, ChannelMode::Threaded] {
                let streamed = evaluate(
                    &net,
                    Mode::Inference,
                    scheme,
                    &EvalConfig {
                        channel_mode,
                        ..cfg
                    },
                );
                assert_bit_identical(
                    &oracle,
                    &streamed,
                    &format!("{}/{scheme:?}/{channel_mode:?}", net.name()),
                );
            }
        }
    }
}

/// Builds a small random network covering every operator class the trace
/// generator knows (conv, depthwise, fc, eltwise, attention GEMM,
/// embedding gathers).
fn random_net(kinds: &[usize], hw: usize, cin: usize, cout: usize, emb_rows: usize) -> Network {
    let mut layers = Vec::new();
    let mut channels = cin;
    for (i, kind) in kinds.iter().enumerate() {
        let name = format!("l{i}");
        match kind % 6 {
            0 => {
                layers.push(conv(&name, hw, channels, cout, 3, 1, 1));
                channels = cout;
            }
            1 => {
                layers.push(dwconv(&name, hw, channels, 3, 1, 1));
            }
            2 => {
                layers.push(Layer::new(
                    &name,
                    Op::Eltwise {
                        elems: channels * hw * hw,
                        reads_per_elem: 1 + (i % 2),
                    },
                ));
            }
            3 => {
                layers.push(Layer::new(
                    &name,
                    Op::AttnMatmul(Gemm {
                        m: hw,
                        k: channels.max(1),
                        n: hw,
                    }),
                ));
            }
            4 => {
                layers.push(Layer::new(
                    &name,
                    Op::Embedding {
                        rows: emb_rows,
                        dim: 16,
                        lookups: 4,
                    },
                ));
            }
            _ => {
                let in_elems = (channels * hw * hw).max(1);
                layers.push(fc(&name, 1, in_elems, cout.max(1)));
            }
        }
    }
    Network::new("random", layers)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The acceptance pin: random networks (all operator classes), both
    /// modes, all four schemes, serial and channel-threaded — streaming
    /// must reproduce the materialized oracle's cycles, traffic bytes,
    /// and row-buffer stats bit for bit.
    #[test]
    fn streaming_matches_materialized(
        kind0 in 0usize..6,
        kind1 in 0usize..6,
        kind2 in 0usize..6,
        hw in 4usize..14,
        cin in 1usize..5,
        cout in 2usize..8,
        emb_rows in 64usize..4096,
        batch in 1usize..4,
        scheme_sel in 0usize..4,
        threaded in proptest::arbitrary::any::<bool>(),
    ) {
        let net = random_net(&[kind0, kind1, kind2], hw, cin, cout, emb_rows);
        let scheme = Scheme::all()[scheme_sel];
        let cfg = EvalConfig {
            parallelism: Parallelism::Serial,
            ..EvalConfig::default()
        };
        let streaming_cfg = EvalConfig {
            channel_mode: if threaded { ChannelMode::Threaded } else { ChannelMode::Serial },
            ..cfg
        };
        for mode in [Mode::Inference, Mode::Training { batch }] {
            let oracle = evaluate_materialized(&net, mode, scheme, &cfg);
            let streamed = evaluate(&net, mode, scheme, &streaming_cfg);
            assert_bit_identical(
                &oracle,
                &streamed,
                &format!("random {mode:?}/{scheme:?}/threaded={threaded}"),
            );
        }
    }
}
