//! Integration coverage for the parallel evaluation pipeline: the worker
//! pool must be a pure speedup — bit-identical results in deterministic
//! order — and the reworked DDR4 scheduler must keep the figure-level
//! invariants the paper's evaluation relies on.

use guardnn::perf::{
    evaluate_all, evaluate_all_parallel, evaluate_batch, evaluate_suite, EvalConfig, EvalJob, Mode,
    Parallelism, Scheme,
};
use guardnn_memprot::harness::RunSummary;
use guardnn_models::layer::{conv, fc};
use guardnn_models::Network;

fn tiny(name: &str) -> Network {
    Network::new(
        name,
        vec![
            conv("c1", 12, 3, 6, 3, 1, 1),
            conv("c2", 12, 6, 6, 3, 1, 1),
            fc("f1", 1, 6 * 12 * 12, 32),
        ],
    )
}

fn assert_bit_identical(a: &RunSummary, b: &RunSummary) {
    assert_eq!(a.scheme, b.scheme);
    assert_eq!(a.data_bytes, b.data_bytes);
    assert_eq!(a.meta_bytes, b.meta_bytes);
    assert_eq!(a.dram, b.dram);
    assert_eq!(a.compute_cycles, b.compute_cycles);
    assert_eq!(a.exec_ns.to_bits(), b.exec_ns.to_bits(), "exec_ns differs");
}

#[test]
fn parallel_evaluation_is_deterministic() {
    let net = tiny("par-int");
    let serial = EvalConfig {
        parallelism: Parallelism::Serial,
        ..EvalConfig::default()
    };
    // More workers than jobs, to exercise the hand-out path thoroughly.
    let parallel = EvalConfig {
        parallelism: Parallelism::Threads(8),
        ..EvalConfig::default()
    };
    let a = evaluate_all(&net, Mode::Inference, &serial);
    let b = evaluate_all_parallel(&net, Mode::Inference, &parallel);
    for ((sa, ra), (sb, rb)) in a.iter().zip(&b) {
        assert_eq!(sa, sb, "scheme order must be Scheme::all()");
        assert_bit_identical(ra, rb);
    }
}

#[test]
fn suite_and_batch_preserve_job_order() {
    let nets = [tiny("net-a"), tiny("net-b"), tiny("net-c")];
    let cfg = EvalConfig {
        parallelism: Parallelism::Threads(4),
        ..EvalConfig::default()
    };
    let suite = evaluate_suite(&nets, Mode::Inference, &cfg);
    assert_eq!(suite.len(), nets.len());
    for per_net in &suite {
        let schemes: Vec<Scheme> = per_net.iter().map(|(s, _)| *s).collect();
        assert_eq!(schemes, Scheme::all().to_vec());
    }
    // An explicit batch with per-job configs comes back in job order.
    let jobs: Vec<EvalJob<'_>> = nets
        .iter()
        .map(|network| EvalJob {
            network,
            mode: Mode::Inference,
            scheme: Scheme::GuardNnCi,
            cfg,
        })
        .collect();
    let runs = evaluate_batch(cfg.parallelism, &jobs);
    assert_eq!(runs.len(), jobs.len());
    for (run, (_, direct)) in runs.iter().zip(suite.iter().map(|per_net| &per_net[2])) {
        // Job i must hold network i's GuardNN_CI result, not some other slot's.
        assert_bit_identical(run, direct);
    }
}

#[test]
fn scheduler_rework_keeps_figure_invariants() {
    // The paper's headline ordering must survive the scheduler timing
    // fixes: NP never slower than the protected runs, BP the slowest, and
    // metadata traffic strictly ordered GuardNN_CI < BP.
    let net = tiny("inv");
    let cfg = EvalConfig::default();
    for mode in [Mode::Inference, Mode::Training { batch: 2 }] {
        let results = evaluate_all_parallel(&net, mode, &cfg);
        let get = |s: Scheme| {
            results
                .iter()
                .find(|(sc, _)| *sc == s)
                .map(|(_, r)| r)
                .expect("present")
        };
        let np = get(Scheme::NoProtection);
        let gci = get(Scheme::GuardNnCi);
        let bp = get(Scheme::Baseline);
        assert!(np.exec_ns <= gci.exec_ns + 1e-9, "{mode:?}");
        assert!(gci.exec_ns <= bp.exec_ns, "{mode:?}");
        assert!(gci.meta_bytes < bp.meta_bytes, "{mode:?}");
    }
}
